"""Command-line interface.

::

    repro list                          # available experiments
    repro run fig2 [--csv f.csv]        # regenerate a table/figure
    repro reproduce-all --out results --jobs 4   # parallel campaign
    repro balance BT-MZ-32 --gears uniform:6 --algorithm max
    repro trace CG-32 -o cg32.jsonl     # record a skeleton trace
    repro timeline BT-MZ-32             # ASCII Fig.1-style timeline
    repro lint --format sarif           # static analysis (see docs/diagnostics.md)
    repro serve --port 8080 --workers 2 # simulation service (docs/service.md)
    repro cache stats                   # persistent result-cache maintenance

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

__all__ = ["main", "build_gear_set"]


def build_gear_set(spec: str):
    """Parse a gear-set spec: ``uniform:N``, ``exponential:N``,
    ``unlimited``, ``limited``, ``limited+ocP`` or ``avg-discrete``."""
    from repro.core.gears import (
        exponential_gear_set,
        limited_continuous_set,
        overclocked,
        uniform_gear_set,
        unlimited_continuous_set,
    )

    spec = spec.strip().lower()
    if spec == "unlimited":
        return unlimited_continuous_set()
    if spec == "limited":
        return limited_continuous_set()
    if spec == "avg-discrete":
        from repro.experiments.fig9 import avg_discrete_set

        return avg_discrete_set()
    if spec.startswith("limited+oc"):
        return overclocked(limited_continuous_set(), float(spec[len("limited+oc"):]))
    for prefix, factory in (("uniform:", uniform_gear_set),
                            ("exponential:", exponential_gear_set)):
        if spec.startswith(prefix):
            return factory(int(spec[len(prefix):]))
    raise argparse.ArgumentTypeError(
        f"bad gear set {spec!r}; try uniform:6, exponential:5, unlimited, "
        "limited, limited+oc10, avg-discrete"
    )


def _config_from(args: argparse.Namespace):
    from repro.experiments.runner import RunnerConfig

    kwargs = {}
    if getattr(args, "iterations", None):
        kwargs["iterations"] = args.iterations
    if getattr(args, "beta", None) is not None:
        kwargs["beta"] = args.beta
    if getattr(args, "apps", None):
        kwargs["apps"] = tuple(a.strip() for a in args.apps.split(","))
    if getattr(args, "platform", None):
        from repro.netsim.config import load_platform

        kwargs["platform"] = load_platform(args.platform)
    if getattr(args, "engine", None):
        kwargs["engine"] = args.engine
    if getattr(args, "mmap", False):
        kwargs["storage"] = "mmap"
    return RunnerConfig(**kwargs)


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENT_IDS

    for eid in EXPERIMENT_IDS:
        print(eid)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import get_experiment

    result = get_experiment(args.experiment)(_config_from(args))
    if args.md:
        from repro.experiments.report import format_markdown

        print(format_markdown(result.columns, result.rows, decimals=args.decimals))
    else:
        print(result.to_ascii(decimals=args.decimals))
    if args.experiment == "fig1":
        print("\n--- original ---")
        print(result.series["ascii_original"])
        print("\n--- after MAX ---")
        print(result.series["ascii_after"])
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.svg:
        numeric = [
            c for c in result.columns
            if result.rows and isinstance(result.rows[0].get(c), (int, float))
        ]
        if args.experiment == "fig1":
            svg = result.series["svg_after"]
        else:
            svg = result.to_svg(result.columns[0], numeric[:6])
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(svg)
        print(f"wrote {args.svg}", file=sys.stderr)
    return 0


def _cmd_platform(args: argparse.Namespace) -> int:
    import json

    from repro.netsim.config import platform_to_dict
    from repro.netsim.platform import MYRINET_LIKE

    text = json.dumps(platform_to_dict(MYRINET_LIKE), indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    import json

    # Shared with the service's worker pool, so `repro balance --json`
    # is byte-identical to the `POST /v1/balance` response body.
    from repro.service.workers import execute_balance

    spec = {
        "app": args.app,
        "gears": args.gears,
        "algorithm": args.algorithm,
        "beta": args.beta,
        "iterations": args.iterations,
        "base_compute": 0.02,
        "engine": args.engine,
    }
    if args.cache_dir:
        spec["cache_dir"] = args.cache_dir
    if getattr(args, "power_cap", None) is not None:
        # additive: capless specs stay byte-identical to the pre-cap
        # wire format (and keep their cache identities)
        spec["power_cap"] = args.power_cap
    if getattr(args, "mmap", False):
        spec["storage"] = "mmap"
    try:
        report, _runner = execute_balance(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report)
        for key, value in sorted(report.row().items()):
            print(f"  {key:28s} {value}")
        power = getattr(report, "power", None)
        if power is not None:
            print("  power cap")
            for key in (
                "cap_w", "peak_power_w", "avg_power_w", "headroom_w",
                "uncapped_peak_power_w", "binding_count",
            ):
                print(f"    {key:26s} {power[key]}")
    if args.save_assignment:
        with open(args.save_assignment, "w", encoding="utf-8") as fh:
            json.dump(report.assignment.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.save_assignment}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s %(message)s",
    )
    if args.replicas > 0:
        from repro.service.supervisor import FleetConfig, Supervisor

        fleet = FleetConfig(
            host=args.host,
            port=args.port,
            replicas=args.replicas,
            workers=args.workers,
            queue_limit=args.queue_limit,
            cache_dir=args.cache_dir,
            iterations=args.iterations,
            beta=args.beta,
            drain_linger=args.drain_linger or 1.0,
            peer_secret=args.peer_secret,
        )
        return asyncio.run(Supervisor(fleet).run())

    from repro.service.app import ServiceApp, ServiceConfig

    peers = tuple(
        p.strip() for p in (args.peers or "").split(",") if p.strip()
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir,
        iterations=args.iterations,
        beta=args.beta,
        peers=peers,
        peer_secret=args.peer_secret,
        drain_linger=args.drain_linger,
        replica_name=args.replica_name,
    )
    return asyncio.run(ServiceApp(config).run())


def _cmd_cache(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.experiments.cache import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache dir:   {stats['cache_dir']}")
        print(f"entries:     {stats['entries']}")
        print(f"total bytes: {stats['total_bytes']}")
        for kind, count in stats["kinds"].items():
            print(f"  {kind:14s} {count}")
        if stats["oldest_mtime"] is not None:
            age_days = (time.time() - stats["oldest_mtime"]) / 86400.0
            print(f"oldest:      {age_days:.1f} day(s)")
        return 0
    if args.cache_command == "gc":
        out = cache.gc(args.max_age)
        print(
            f"removed {out['removed']} blob(s), freed {out['freed_bytes']} "
            f"bytes from {cache.cache_dir}"
        )
        return 0
    removed = cache.clear()
    print(f"removed {removed} blob(s) from {cache.cache_dir}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Side-by-side: every strategy this library implements, one app."""
    from repro.apps import build_app
    from repro.core.algorithms import AvgAlgorithm, MaxAlgorithm
    from repro.core.balancer import PowerAwareLoadBalancer
    from repro.core.dynamic import CommPhaseScalingRuntime, JitterRuntime
    from repro.core.gears import uniform_gear_set
    from repro.core.phasebalancer import PhaseAwareLoadBalancer
    from repro.experiments.fig9 import avg_discrete_set
    from repro.experiments.report import format_table
    from repro.netsim.simulator import MpiSimulator

    gear_set = build_gear_set(args.gears)
    app = build_app(args.app, iterations=max(args.iterations, 2))
    trace = MpiSimulator().run(
        app.programs(), record_trace=True, meta={"name": app.name}
    ).trace

    rows = []

    def add(label, energy, time):
        rows.append(
            {
                "strategy": label,
                "normalized_energy_pct": 100.0 * energy,
                "normalized_time_pct": 100.0 * time,
                "normalized_edp_pct": 100.0 * energy * time,
            }
        )

    r = PowerAwareLoadBalancer(gear_set=gear_set).balance_trace(
        trace, algorithm=MaxAlgorithm()
    )
    add("MAX (paper, static)", r.normalized_energy, r.normalized_time)
    r = PowerAwareLoadBalancer(gear_set=avg_discrete_set()).balance_trace(
        trace, algorithm=AvgAlgorithm()
    )
    add("AVG (paper, +2.6 GHz gear)", r.normalized_energy, r.normalized_time)
    p = PhaseAwareLoadBalancer(gear_set=gear_set).balance_trace(trace)
    add("per-phase MAX (future work)", p.normalized_energy, p.normalized_time)
    j = JitterRuntime(gear_set=gear_set).run(trace)
    add("Jitter (dynamic)", j.normalized_energy, j.normalized_time)
    c = CommPhaseScalingRuntime(gear_set=uniform_gear_set(6)).run(trace)
    add("comm-phase scaling", c.normalized_energy, c.normalized_time)

    print(format_table(
        ["strategy", "normalized_energy_pct", "normalized_time_pct",
         "normalized_edp_pct"],
        rows,
        title=f"DVFS strategies on {app.name} "
              f"(LB {r.load_balance:.1%}, gears {gear_set.name})",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.apps import build_app
    from repro.core.balancer import PowerAwareLoadBalancer
    from repro.core.gears import uniform_gear_set
    from repro.traces.jsonio import write_trace

    app = build_app(args.app, iterations=args.iterations)
    balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
    if args.jobs > 1:
        # shard-parallel generation goes straight to columnar storage
        # (byte-identical output whatever the worker count)
        trace = app.columnar_trace(jobs=args.jobs)
        trace.meta.setdefault("nproc", trace.nproc)
    else:
        trace = balancer.trace_app(app, columnar=args.columnar)
    write_trace(trace, args.output)
    print(f"wrote {args.output} ({trace.total_records()} records, "
          f"{trace.nproc} ranks)")
    return 0


def _cmd_trace_pack(args: argparse.Namespace) -> int:
    from repro.traces import colstore
    from repro.traces.columnar import ColumnarTrace
    from repro.traces.jsonio import read_trace, write_trace

    try:
        if colstore.is_store_file(args.input):
            # binary -> JSON-lines: stream rows straight off the mapped
            # columns, never materialising record objects
            trace = ColumnarTrace.open(args.input, mmap=True)
            try:
                write_trace(trace, args.output)
            finally:
                trace.detach_mapping()
            direction = "store -> jsonl"
        else:
            # JSON-lines -> binary: the columnar reader parses line by
            # line, so both representations never coexist in full
            trace = read_trace(args.input, columnar=True)
            trace.save(args.output)
            direction = "jsonl -> store"
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"packed {args.input} -> {args.output} ({direction})")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    import json

    from repro.traces.colstore import describe_store

    try:
        info = describe_store(args.store)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"{info['path']}: {info['format']} v{info['version']}")
    print(f"  ranks:           {info['nproc']}")
    print(f"  events:          {info['n_events']}")
    print(f"  file bytes:      {info['file_nbytes']}")
    print(f"  payload bytes:   {info['payload_nbytes']} "
          f"(offset {info['payload_offset']})")
    print(f"  bytes/event:     {info['bytes_per_event']:.1f}")
    print(f"  payload sha256:  {info['payload_sha256']}")
    if info["meta"]:
        print(f"  meta:            {json.dumps(info['meta'], sort_keys=True)}")
    print(f"  strings:         {info['strings']['count']} "
          f"({info['strings']['nbytes']} bytes)")
    print("  columns:")
    for col in info["columns"]:
        print(f"    {col['name']:<10s} {col['dtype']:<5s} "
              f"count={col['count']:<12d} nbytes={col['nbytes']}")
    return 0


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import reproduce_all

    experiments = None
    if args.experiments:
        experiments = tuple(e.strip() for e in args.experiments.split(","))
    cache_dir = None
    if not args.no_cache:
        if args.cache_dir:
            cache_dir = args.cache_dir
        else:
            from repro.experiments.cache import default_cache_dir

            cache_dir = default_cache_dir()
    manifest = reproduce_all(
        args.out,
        _config_from(args),
        experiments=experiments,
        jobs=args.jobs,
        cache_dir=cache_dir,
    )
    return 1 if manifest["errors"] else 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.netsim.simulator import MpiSimulator
    from repro.traces.analysis import trace_stats
    from repro.traces.iterstats import iteration_stats
    from repro.traces.jsonio import read_trace

    trace = read_trace(args.trace)
    trace.validate()
    print(f"{args.trace}: structurally valid")
    result = MpiSimulator().run_trace(trace)
    stats = trace_stats(trace, result.execution_time)
    print(f"  name:                {stats.name}")
    print(f"  ranks:               {stats.nproc}")
    print(f"  records:             {stats.total_records}")
    print(f"  iterations:          {stats.iterations}")
    print(f"  load balance:        {stats.load_balance:.2%}")
    print(f"  parallel efficiency: {stats.parallel_efficiency:.2%}")
    print(f"  replay time:         {result.execution_time:.6g} s")
    print(f"  bytes sent:          {stats.bytes_sent}")
    if stats.collective_counts:
        ops = ", ".join(
            f"{op}x{n}" for op, n in sorted(stats.collective_counts.items())
        )
        print(f"  collectives:         {ops}")
    if stats.iterations >= 2:
        it = iteration_stats(trace)
        print(f"  per-iteration LB:    {it.mean_lb:.2%} (mean)")
        print(f"  drift:               {it.drift:.3f}  "
              f"max rank CV: {it.max_rank_cv:.3f}")
    from repro.traces.analysis import top_communicators

    pairs = top_communicators(trace, k=5)
    if pairs:
        print("  heaviest p2p pairs:  " + ", ".join(
            f"r{src}->r{dst} {int(nbytes)}B" for src, dst, nbytes in pairs
        ))
    from repro.traces.lint import lint_trace

    findings = lint_trace(trace)
    if findings:
        print(f"  lint ({len(findings)} finding(s)):")
        for warning in findings[:10]:
            print(f"    {warning}")
        if len(findings) > 10:
            print(f"    ... and {len(findings) - 10} more")
    else:
        print("  lint:                clean")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.diagnostics.cli import run_lint

    return run_lint(args)


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.apps import build_app
    from repro.netsim.simulator import MpiSimulator
    from repro.traces.timeline import ascii_timeline

    app = build_app(args.app, iterations=args.iterations)
    result = MpiSimulator().run(app.programs(), record_intervals=True)
    print(ascii_timeline(result, width=args.width, detailed=args.detailed))
    return 0


#: ``repro trace`` subcommands; a first token outside this set keeps
#: the historical ``repro trace APP`` spelling working (it becomes
#: ``repro trace record APP``).
_TRACE_SUBCOMMANDS = frozenset({"record", "pack", "info"})


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if (
        len(argv) >= 2
        and argv[0] == "trace"
        and argv[1] not in _TRACE_SUBCOMMANDS
        and argv[1] not in ("-h", "--help")
    ):
        argv.insert(1, "record")
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware DVFS load balancing of MPI applications "
        "(IPDPS'09 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate a paper table/figure")
    p_run.add_argument("experiment")
    p_run.add_argument("--csv", help="also write rows as CSV")
    p_run.add_argument("--svg", help="also write a bar-chart/timeline SVG")
    p_run.add_argument("--iterations", type=int, default=None)
    p_run.add_argument("--beta", type=float, default=None)
    p_run.add_argument("--apps", help="comma-separated instance subset")
    p_run.add_argument("--platform", help="platform JSON file (see 'platform')")
    p_run.add_argument("--decimals", type=int, default=2)
    p_run.add_argument("--md", action="store_true", help="markdown table output")
    p_run.add_argument(
        "--engine", choices=("auto", "des", "compiled"), default=None,
        help="replay engine (default auto: compiled kernel with DES "
             "fallback; results are identical)",
    )
    p_run.add_argument(
        "--mmap", action="store_true",
        help="record traces through the memory-mapped columnar store "
             "(identical results; out-of-core columns for huge worlds)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_all = sub.add_parser(
        "reproduce-all", help="regenerate every table/figure into a directory"
    )
    p_all.add_argument("--out", default="results")
    p_all.add_argument("--iterations", type=int, default=None)
    p_all.add_argument("--beta", type=float, default=None)
    p_all.add_argument("--apps", help="comma-separated instance subset")
    p_all.add_argument("--platform", help="platform JSON file")
    p_all.add_argument(
        "--engine", choices=("auto", "des", "compiled"), default=None,
        help="replay engine (default auto; identical results, "
             "engine counters land in manifest.json)",
    )
    p_all.add_argument(
        "--experiments", help="comma-separated experiment-id subset"
    )
    p_all.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (<=0 means one per CPU; default 1)",
    )
    p_all.add_argument(
        "--cache-dir",
        help="persistent result cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p_all.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    p_all.set_defaults(fn=_cmd_reproduce_all)

    p_info = sub.add_parser(
        "info", help="validate a trace file and print its statistics"
    )
    p_info.add_argument("trace", help="JSON-lines trace file (.jsonl / .jsonl.gz)")
    p_info.set_defaults(fn=_cmd_info)

    p_plat = sub.add_parser(
        "platform", help="dump the reference platform as JSON (edit + pass "
        "back with --platform)"
    )
    p_plat.add_argument("-o", "--output", default="-")
    p_plat.set_defaults(fn=_cmd_platform)

    p_bal = sub.add_parser("balance", help="balance one application")
    p_bal.add_argument("app", help="e.g. BT-MZ-32")
    p_bal.add_argument("--gears", default="uniform:6")
    p_bal.add_argument("--algorithm", choices=("max", "avg"), default="max")
    p_bal.add_argument("--beta", type=float, default=0.5)
    p_bal.add_argument("--iterations", type=int, default=6)
    p_bal.add_argument(
        "--engine", choices=("auto", "des", "compiled"), default="auto",
        help="replay engine; 'auto' (default) and 'des' produce "
             "byte-identical --json output",
    )
    p_bal.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON (the service wire format)",
    )
    p_bal.add_argument(
        "--cache-dir",
        help="use a persistent result cache (shared with serve/reproduce-all)",
    )
    p_bal.add_argument(
        "--save-assignment",
        help="write the per-rank frequency assignment as JSON",
    )
    p_bal.add_argument(
        "--power-cap", type=float, metavar="WATTS",
        help="cluster power budget in model watts; selects the power-cap "
        "balancer (critical-path-first greedy with water-filling "
        "fallback) instead of --algorithm",
    )
    p_bal.add_argument(
        "--mmap", action="store_true",
        help="trace through the memory-mapped columnar store "
             "(byte-identical --json output; out-of-core columns)",
    )
    p_bal.set_defaults(fn=_cmd_balance)

    p_srv = sub.add_parser(
        "serve", help="run the simulation service (HTTP/JSON, asyncio)"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8080)
    p_srv.add_argument(
        "--workers", type=int, default=2,
        help="simulation worker processes (default 2)",
    )
    p_srv.add_argument(
        "--queue-limit", type=int, default=16,
        help="admitted jobs beyond which requests get 429 (default 16)",
    )
    p_srv.add_argument(
        "--cache-dir",
        help="persistent result cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p_srv.add_argument("--iterations", type=int, default=6)
    p_srv.add_argument("--beta", type=float, default=0.5)
    p_srv.add_argument(
        "--replicas", type=int, default=0,
        help="run a supervised fleet: N replica processes on adjacent "
        "ports behind a consistent-hash router on --port (default 0 = "
        "single process, no router)",
    )
    p_srv.add_argument(
        "--peers",
        help="comma-separated sibling replica addresses (host:port) for "
        "read-through peer caching (set automatically by --replicas)",
    )
    p_srv.add_argument(
        "--peer-secret",
        default=os.environ.get("REPRO_PEER_SECRET"),
        help="fleet-shared secret required on the /v1/cache blob "
        "endpoints (default: $REPRO_PEER_SECRET; generated "
        "automatically by --replicas). Without one, the endpoints only "
        "exist when --peers is set — do not expose replica ports then.",
    )
    p_srv.add_argument(
        "--replica-name",
        help="display name for logs and fleet health (set automatically "
        "by --replicas)",
    )
    p_srv.add_argument(
        "--drain-linger", type=float, default=0.0,
        help="seconds a draining replica keeps answering job polls "
        "after its last job finished (default 0; fleets default to 1)",
    )
    p_srv.set_defaults(fn=_cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the persistent result cache"
    )
    p_cache.add_argument(
        "--cache-dir",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cs = cache_sub.add_parser("stats", help="entry/byte totals by kind")
    p_cs.add_argument("--json", action="store_true")
    p_cs.set_defaults(fn=_cmd_cache)
    p_cg = cache_sub.add_parser("gc", help="drop blobs older than --max-age")
    p_cg.add_argument(
        "--max-age", type=float, default=30.0, metavar="DAYS",
        help="age threshold in days (default 30)",
    )
    p_cg.set_defaults(fn=_cmd_cache)
    cache_sub.add_parser("clear", help="remove every cache blob") \
        .set_defaults(fn=_cmd_cache)

    p_cmp = sub.add_parser(
        "compare", help="side-by-side DVFS strategies for one application"
    )
    p_cmp.add_argument("app")
    p_cmp.add_argument("--gears", default="uniform:6")
    p_cmp.add_argument("--iterations", type=int, default=6)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_tr = sub.add_parser(
        "trace", help="record / convert / inspect trace files"
    )
    trace_sub = p_tr.add_subparsers(dest="trace_command", required=True)
    p_trr = trace_sub.add_parser(
        "record", help="record a skeleton trace (JSON-lines or .rpcs)"
    )
    p_trr.add_argument("app")
    p_trr.add_argument("-o", "--output", default="trace.jsonl")
    p_trr.add_argument("--iterations", type=int, default=6)
    p_trr.add_argument(
        "--columnar",
        action="store_true",
        help="record into columnar storage (no per-event record objects; "
        "same file bytes, scales to very large worlds)",
    )
    p_trr.add_argument(
        "--jobs", type=int, default=1,
        help="shard-parallel generation workers (implies columnar; "
        "output bytes are identical whatever the worker count)",
    )
    p_trr.set_defaults(fn=_cmd_trace)
    p_trp = trace_sub.add_parser(
        "pack", help="convert JSON-lines <-> binary columnar store"
    )
    p_trp.add_argument("input", help="trace file (direction is sniffed)")
    p_trp.add_argument("output")
    p_trp.set_defaults(fn=_cmd_trace_pack)
    p_tri = trace_sub.add_parser(
        "info", help="layout/size report of a binary trace store"
    )
    p_tri.add_argument("store", help=".rpcs store file")
    p_tri.add_argument("--json", action="store_true")
    p_tri.set_defaults(fn=_cmd_trace_info)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: traces, gear sets, platform, models, results",
    )
    from repro.diagnostics.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=_cmd_lint)

    p_tl = sub.add_parser("timeline", help="ASCII timeline of one run")
    p_tl.add_argument("app")
    p_tl.add_argument("--iterations", type=int, default=4)
    p_tl.add_argument("--width", type=int, default=100)
    p_tl.add_argument("--detailed", action="store_true")
    p_tl.set_defaults(fn=_cmd_timeline)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
