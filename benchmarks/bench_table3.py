"""Table 3 — application characteristics at full fidelity."""

from benchmarks.conftest import regenerate


def test_table3(benchmark):
    result = regenerate(benchmark, "table3")
    assert len(result.rows) == 12
    for row in result.rows:
        assert abs(row["load_balance_pct"] - row["paper_lb_pct"]) < 0.5
        rel = abs(row["parallel_efficiency_pct"] - row["paper_pe_pct"])
        assert rel / row["paper_pe_pct"] < 0.08
