"""Extension experiments: system energy and dynamic runtimes."""

import pytest

from benchmarks.conftest import regenerate


def test_system_energy(benchmark):
    """The paper's closing argument: AVG's time cut pays at node level."""
    result = regenerate(benchmark, "system_energy")
    wins = 0
    for row in result.rows:
        # MAX always wins the CPU-only comparison...
        assert row["cpu_energy_max_pct"] <= row["cpu_energy_avg_pct"] + 1.0
        # ...but the system-level gap closes, and flips for apps where
        # AVG genuinely speeds execution up
        cpu_gap = row["cpu_energy_avg_pct"] - row["cpu_energy_max_pct"]
        sys_gap = row["system_avg_cf45_pct"] - row["system_max_cf45_pct"]
        assert sys_gap < cpu_gap + 0.5
        if sys_gap < 0:
            wins += 1
    assert wins >= 3  # AVG beats MAX on system energy for several apps


def test_sensitivity(benchmark):
    """Normalized conclusions must not hinge on platform constants."""
    result = regenerate(benchmark, "sensitivity")
    rows = {r["application"]: r for r in result.rows}
    # computation-imbalance-driven savings: platform-insensitive
    for app in ("BT-MZ-32", "SPECFEM3D-96", "CG-64"):
        assert rows[app]["spread_pct_points"] < 1.0
    # the communication monster is allowed mild sensitivity
    assert rows["IS-32"]["spread_pct_points"] < 5.0


def test_gearopt(benchmark):
    """Optimised placement beats both hand-designed families; the gap
    shrinks with set size (the 'six gears suffice' reading)."""
    result = regenerate(benchmark, "gearopt")
    rows = {r["gears"]: r for r in result.rows}
    for n, row in rows.items():
        assert row["energy_optimized_pct"] <= row["energy_uniform_pct"] + 0.3
        assert row["energy_optimized_pct"] <= row["energy_exponential_pct"] + 0.3
    gap = lambda r: r["energy_uniform_pct"] - r["energy_optimized_pct"]
    assert gap(rows[3]) > gap(rows[7]) - 0.5  # placement matters most when scarce


def test_oc_sweep(benchmark):
    """AVG headroom sweep: time falls monotonically then saturates;
    at +0% the target degenerates to MAX's (no over-clock = no speedup
    beyond the original critical path)."""
    result = regenerate(benchmark, "oc_sweep")
    heads = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
    for row in result.rows:
        times = [row[f"time_oc{p:g}_pct"] for p in heads]
        assert all(b <= a + 0.5 for a, b in zip(times, times[1:]))
        assert row["time_oc0_pct"] >= 99.5  # no headroom, no speedup
    rows = {r["application"]: r for r in result.rows}
    # balanced apps saturate early: more headroom stops changing anything
    assert rows["CG-32"]["time_oc30_pct"] == pytest.approx(
        rows["CG-32"]["time_oc10_pct"], abs=0.1
    )
    # very imbalanced apps keep converting headroom into speedup
    assert rows["BT-MZ-32"]["time_oc30_pct"] < rows["BT-MZ-32"]["time_oc10_pct"] - 2.0


def test_seed_robustness(benchmark):
    """Conclusions are properties of (LB, structure), not of the draw."""
    result = regenerate(benchmark, "seeds")
    for row in result.rows:
        assert row["lb_spread_pct_points"] < 0.01  # calibration is exact
        assert row["energy_spread_pct_points"] < 5.0
    rows = {r["application"]: r for r in result.rows}
    # orderings that figures rely on hold across the whole seed spread
    assert rows["BT-MZ-32"]["energy_max_pct"] < rows["MG-32"]["energy_min_pct"]
    assert rows["IS-32"]["energy_max_pct"] < rows["SPECFEM3D-96"]["energy_min_pct"]


def test_dynamic_runtimes(benchmark):
    result = regenerate(benchmark, "dynamic")
    rows = {(r["regime"], r["runtime"]): r for r in result.rows}

    # stationary: Jitter within a warm-up iteration of static MAX
    stat_static = rows[("stationary", "static-MAX")]
    stat_jitter = rows[("stationary", "Jitter")]
    assert abs(
        stat_jitter["normalized_energy_pct"] - stat_static["normalized_energy_pct"]
    ) < 5.0

    # drifting: static MAX blind (totals flatten), Jitter still saves
    drift_static = rows[("drifting", "static-MAX")]
    drift_jitter = rows[("drifting", "Jitter")]
    assert drift_jitter["normalized_energy_pct"] < (
        drift_static["normalized_energy_pct"] + 1.0
    )

    # comm-bound: comm-phase scaling wins where MAX cannot
    comm_static = rows[("comm-bound", "static-MAX")]
    comm_scaling = rows[("comm-bound", "comm-scaling")]
    assert comm_scaling["normalized_energy_pct"] < (
        comm_static["normalized_energy_pct"] - 5.0
    )
