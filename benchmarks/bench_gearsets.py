"""Tables 1 & 2 — gear-set construction (and an exactness gate)."""

from benchmarks.conftest import regenerate


def test_table_gears(benchmark):
    result = regenerate(benchmark, "table_gears")
    for row in result.rows:
        assert abs(row["frequency_ghz"] - row["paper_frequency_ghz"]) < 0.005
        assert abs(row["voltage_v"] - row["paper_voltage_v"]) < 0.005
