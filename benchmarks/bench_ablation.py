"""Design-choice ablations (DESIGN.md §5)."""

from benchmarks.conftest import regenerate


def test_ablation(benchmark):
    result = regenerate(benchmark, "ablation")
    rows = result.rows

    rounding = [r for r in rows if r["study"] == "rounding"]
    by_app = {}
    for r in rounding:
        by_app.setdefault(r["application"], {})[r["variant"]] = r
    for app, variants in by_app.items():
        up = variants["round-up (paper)"]
        nearest = variants["round-nearest"]
        # the paper's round-up rule protects execution time; nearest
        # trades time for extra energy savings
        assert up["normalized_time_pct"] <= nearest["normalized_time_pct"] + 0.5
        assert nearest["normalized_energy_pct"] <= up["normalized_energy_pct"] + 0.5

    phase = {r["variant"]: r for r in rows if r["study"] == "per-phase"}
    oracle = phase["per-phase oracle (future work)"]
    single = phase["single setting (paper MAX)"]
    assert oracle["normalized_time_pct"] < single["normalized_time_pct"] - 2.0

    contention = [r for r in rows if r["study"] == "contention"]
    # normalized results are robust to network contention modelling
    by_app = {}
    for r in contention:
        by_app.setdefault(r["application"], []).append(r)
    for app, pair in by_app.items():
        assert abs(
            pair[0]["normalized_energy_pct"] - pair[1]["normalized_energy_pct"]
        ) < 2.0

    # ... and to the collective model (analytic vs p2p decomposition)
    coll = [r for r in rows if r["study"] == "collective-model"]
    by_app = {}
    for r in coll:
        by_app.setdefault(r["application"], []).append(r)
    assert by_app
    for app, pair in by_app.items():
        assert abs(
            pair[0]["normalized_energy_pct"] - pair[1]["normalized_energy_pct"]
        ) < 2.0
        assert abs(
            pair[0]["normalized_time_pct"] - pair[1]["normalized_time_pct"]
        ) < 3.0

    # ... and to the eager/rendezvous protocol threshold
    eager = [r for r in rows if r["study"] == "eager-threshold"]
    assert len(eager) == 3
    energies = [r["normalized_energy_pct"] for r in eager]
    assert max(energies) - min(energies) < 2.0
