"""Figure 2 — normalized energy & EDP across gear-set sizes (MAX)."""

from benchmarks.conftest import regenerate


def test_fig2(benchmark):
    result = regenerate(benchmark, "fig2")
    energy = result.pivot("application", "gear_set", "normalized_energy_pct")

    # unlimited < limited only where sub-0.8 GHz frequencies are wanted
    assert energy["BT-MZ-32"]["unlimited"] < energy["BT-MZ-32"]["limited"] - 0.5
    for app in ("CG-64", "SPECFEM3D-96", "WRF-128"):
        assert abs(energy[app]["unlimited"] - energy[app]["limited"]) < 0.5

    # six gears land close to the limited continuous reference
    for app, row in energy.items():
        assert row["uniform-6"] <= row["limited"] + 12.0

    # execution time: <= ~2% except PEPC (up to ~20%)
    for row in result.rows:
        if row["application"] == "PEPC-128":
            assert row["normalized_time_pct"] < 125.0
        else:
            assert row["normalized_time_pct"] < 104.0
