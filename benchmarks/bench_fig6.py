"""Figure 6 — energy as a function of the static-power fraction."""

from benchmarks.conftest import regenerate

FRACTIONS = tuple(range(0, 100, 10))


def test_fig6(benchmark):
    result = regenerate(benchmark, "fig6")
    rows = {r["application"]: r for r in result.rows}

    for row in result.rows:
        series = [row[f"energy_sf{s}_pct"] for s in FRACTIONS]
        # savings shrink monotonically as static power grows
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    # at >= 70% static, savings are roughly half of the 20% case
    bt = rows["BT-MZ-32"]
    savings_20 = 100.0 - bt["energy_sf20_pct"]
    savings_70 = 100.0 - bt["energy_sf70_pct"]
    assert savings_70 < 0.75 * savings_20
    assert savings_70 > 0.3 * savings_20

    # slope ordered by imbalance
    slope = lambda r: r["energy_sf90_pct"] - r["energy_sf0_pct"]
    assert slope(rows["IS-32"]) > slope(rows["MG-32"])
    assert slope(rows["BT-MZ-32"]) > slope(rows["CG-32"])
