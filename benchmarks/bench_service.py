"""Simulation service — cold vs cache-hit vs coalesced throughput.

Three measurements against one in-process :class:`ServiceThread`
(real HTTP over loopback, thread-pool workers so the numbers measure
the service, not process spawn):

* ``cold``      — first-ever request: full simulate-and-replay;
* ``cache_hit`` — identical repeat: content-addressed cache fast path;
* ``coalesced`` — a burst of identical concurrent requests riding one
  in-flight simulation (single-flight followers).

The cache-hit path must beat the cold path by at least 10× (it skips
the trace simulation and both replays; only JSON serving remains).
Timings land in pytest-benchmark like every other ``bench_*`` module;
``benchmarks/baselines/service.json`` records a reference run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import (
    RouterConfig,
    RouterThread,
    ServiceConfig,
    ServiceThread,
)

SPEC = {
    "app": "BT-MZ-32",
    "gears": "uniform:6",
    "algorithm": "max",
    "beta": 0.5,
    "iterations": 3,
}
BURST = 8

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    from concurrent.futures import ThreadPoolExecutor

    config = ServiceConfig(
        port=0,
        workers=2,
        queue_limit=BURST + 4,
        cache_dir=str(tmp_path_factory.mktemp("service-bench-cache")),
    )
    with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
        yield svc


@pytest.fixture(scope="module")
def routed(service):
    """The same replica reached through the consistent-hash router.

    Prices the extra hop: request re-parse for the ring key, a
    loopback proxy connection each way.  The replica (and its warm
    cache) is shared with the direct-path measurements above.
    """
    config = RouterConfig(
        port=0,
        replicas=(f"127.0.0.1:{service.port}",),
        health_interval=0.1,
    )
    router = RouterThread(config)
    router.start()
    deadline = time.monotonic() + 30
    while not router.router.ring.nodes:
        assert time.monotonic() < deadline, "replica never joined the ring"
        time.sleep(0.02)
    try:
        yield router
    finally:
        router.stop()


def _balance(svc, **extra):
    response = svc.client.balance(**{**SPEC, **extra})
    assert response.status == 200, response.body
    return response


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def test_service_cold(benchmark, service):
    response = benchmark.pedantic(
        lambda: _timed("cold", lambda: _balance(service)),
        rounds=1, iterations=1,
    )
    assert response.headers["X-Cache"] == "miss"


def test_service_cache_hit(benchmark, service):
    _balance(service)  # ensure primed even when run standalone
    response = benchmark.pedantic(
        lambda: _timed("cache_hit", lambda: _balance(service)),
        rounds=5, iterations=1,
    )
    assert response.headers["X-Cache"] == "hit"

    cold = _TIMINGS.get("cold")
    if cold is not None:  # full-file run: assert the headline speedup
        hit = _TIMINGS["cache_hit"]
        assert hit * 10.0 <= cold, (
            f"cache-hit request ({hit * 1e3:.2f} ms) is not 10x faster "
            f"than the cold request ({cold * 1e3:.2f} ms)"
        )


def test_service_coalesced_burst(benchmark, service):
    # a *fresh* spec per measurement round so the burst is never a
    # plain cache hit: vary iterations (4, 5, ... are all uncached)
    fresh = iter(range(4, 1000))

    def burst():
        iterations = next(fresh)
        results = [None] * BURST

        def fire(i):
            results[i] = _balance(service, iterations=iterations)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(BURST)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        states = sorted(r.headers["X-Cache"] for r in results)
        assert states.count("miss") == 1
        assert states.count("coalesced") == BURST - 1
        return results

    benchmark.pedantic(
        lambda: _timed("coalesced_burst", burst), rounds=3, iterations=1
    )

    cold = _TIMINGS.get("cold")
    if cold is not None:
        per_request = _TIMINGS["coalesced_burst"] / BURST
        assert per_request <= cold, (
            f"coalesced per-request time ({per_request * 1e3:.2f} ms) "
            f"should amortize below one cold request ({cold * 1e3:.2f} ms)"
        )


def test_service_routed_cold(benchmark, service, routed):
    # a spec nothing else in this module requests: first routed hop
    # pays the full simulation on the replica
    response = benchmark.pedantic(
        lambda: _timed(
            "routed_cold", lambda: _balance(routed, iterations=2)
        ),
        rounds=1, iterations=1,
    )
    assert response.headers["X-Cache"] == "miss"
    assert "X-Repro-Replica" in response.headers


def test_service_routed_cache_hit(benchmark, service, routed):
    _balance(routed, iterations=2)  # primed even when run standalone
    response = benchmark.pedantic(
        lambda: _timed(
            "routed_hit", lambda: _balance(routed, iterations=2)
        ),
        rounds=5, iterations=1,
    )
    assert response.headers["X-Cache"] == "hit"

    hit = _TIMINGS["routed_hit"]
    cold = _TIMINGS.get("cold")
    if cold is not None:  # full-file run: the hop must not eat the win
        assert hit * 10.0 <= cold, (
            f"routed cache hit ({hit * 1e3:.2f} ms) is not 10x faster "
            f"than a direct cold request ({cold * 1e3:.2f} ms)"
        )
    direct_hit = _TIMINGS.get("cache_hit")
    if direct_hit is not None:  # the hop adds a bounded constant, not a tier
        assert hit <= direct_hit * 10.0, (
            f"router hop inflates the cache hit from "
            f"{direct_hit * 1e3:.2f} ms to {hit * 1e3:.2f} ms"
        )


def test_routed_body_is_byte_identical_to_direct(service, routed):
    _balance(service)  # both paths warm for the module's base spec
    direct = _balance(service)
    via_router = _balance(routed)
    assert via_router.body == direct.body, (
        "router hop changed response bytes"
    )
