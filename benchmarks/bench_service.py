"""Simulation service — cold vs cache-hit vs coalesced throughput.

Three measurements against one in-process :class:`ServiceThread`
(real HTTP over loopback, thread-pool workers so the numbers measure
the service, not process spawn):

* ``cold``      — first-ever request: full simulate-and-replay;
* ``cache_hit`` — identical repeat: content-addressed cache fast path;
* ``coalesced`` — a burst of identical concurrent requests riding one
  in-flight simulation (single-flight followers).

The cache-hit path must beat the cold path by at least 10× (it skips
the trace simulation and both replays; only JSON serving remains).
Timings land in pytest-benchmark like every other ``bench_*`` module;
``benchmarks/baselines/service.json`` records a reference run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import ServiceConfig, ServiceThread

SPEC = {
    "app": "BT-MZ-32",
    "gears": "uniform:6",
    "algorithm": "max",
    "beta": 0.5,
    "iterations": 3,
}
BURST = 8

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    from concurrent.futures import ThreadPoolExecutor

    config = ServiceConfig(
        port=0,
        workers=2,
        queue_limit=BURST + 4,
        cache_dir=str(tmp_path_factory.mktemp("service-bench-cache")),
    )
    with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
        yield svc


def _balance(svc, **extra):
    response = svc.client.balance(**{**SPEC, **extra})
    assert response.status == 200, response.body
    return response


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def test_service_cold(benchmark, service):
    response = benchmark.pedantic(
        lambda: _timed("cold", lambda: _balance(service)),
        rounds=1, iterations=1,
    )
    assert response.headers["X-Cache"] == "miss"


def test_service_cache_hit(benchmark, service):
    _balance(service)  # ensure primed even when run standalone
    response = benchmark.pedantic(
        lambda: _timed("cache_hit", lambda: _balance(service)),
        rounds=5, iterations=1,
    )
    assert response.headers["X-Cache"] == "hit"

    cold = _TIMINGS.get("cold")
    if cold is not None:  # full-file run: assert the headline speedup
        hit = _TIMINGS["cache_hit"]
        assert hit * 10.0 <= cold, (
            f"cache-hit request ({hit * 1e3:.2f} ms) is not 10x faster "
            f"than the cold request ({cold * 1e3:.2f} ms)"
        )


def test_service_coalesced_burst(benchmark, service):
    # a *fresh* spec per measurement round so the burst is never a
    # plain cache hit: vary iterations (4, 5, ... are all uncached)
    fresh = iter(range(4, 1000))

    def burst():
        iterations = next(fresh)
        results = [None] * BURST

        def fire(i):
            results[i] = _balance(service, iterations=iterations)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(BURST)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        states = sorted(r.headers["X-Cache"] for r in results)
        assert states.count("miss") == 1
        assert states.count("coalesced") == BURST - 1
        return results

    benchmark.pedantic(
        lambda: _timed("coalesced_burst", burst), rounds=3, iterations=1
    )

    cold = _TIMINGS.get("cold")
    if cold is not None:
        per_request = _TIMINGS["coalesced_burst"] / BURST
        assert per_request <= cold, (
            f"coalesced per-request time ({per_request * 1e3:.2f} ms) "
            f"should amortize below one cold request ({cold * 1e3:.2f} ms)"
        )
