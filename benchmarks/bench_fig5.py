"""Figure 5 — impact of the β (memory-boundedness) parameter."""

from benchmarks.conftest import regenerate

BETAS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_fig5(benchmark):
    result = regenerate(benchmark, "fig5")
    rows = {r["application"]: r for r in result.rows}

    # energy grows with beta wherever the gear floor doesn't bind
    for row in result.rows:
        series = [row[f"energy_b{b:g}_pct"] for b in BETAS]
        assert all(b >= a - 0.5 for a, b in zip(series, series[1:]))

    # sensitivity tracks imbalance: the ill-balanced (but unclamped)
    # apps move most; BT-MZ / IS-32 sit at the floor and barely move
    spread = lambda r: r["energy_b1_pct"] - r["energy_b0.3_pct"]
    assert spread(rows["BT-MZ-32"]) < 6.0
    assert spread(rows["IS-32"]) < 6.0
    assert spread(rows["SPECFEM3D-96"]) > spread(rows["BT-MZ-32"])
