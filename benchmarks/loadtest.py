"""Open-loop load generator for the simulation service (k6-style).

A small stdlib load-testing harness aimed at ``repro serve`` (single
replica or a ``--replicas N`` fleet behind the consistent-hash
router).  Two driving modes, mirroring the two questions a service
owner asks:

* **open loop** (``run_open_loop``) — requests *arrive* on a fixed
  rate schedule (stages of ``duration x rate``, like k6's
  constant-arrival-rate executor) regardless of how fast responses
  come back, so latency percentiles reflect queueing under load
  instead of being throttled by the slowest response (the
  coordinated-omission trap of naive closed-loop drivers);
* **closed loop** (``run_closed_loop``) — N workers issue requests
  back-to-back over persistent connections; the completion rate *is*
  the sustainable throughput, which is what the replica-scaling
  assertion in ``bench_loadtest.py`` compares across fleet sizes.

The body mix is seeded and weighted (scalar balance, batch
``candidates`` sweeps, power-capped bodies) over a bounded parameter
pool, so reruns are reproducible and the cache hit ratio evolves the
way production traffic does: a hot set emerges, the fleet warms, the
tail comes from cold bodies and queueing.

CLI::

    PYTHONPATH=src python benchmarks/loadtest.py \
        --url http://127.0.0.1:8080 --mode open \
        --stages 3x20,5x50 --mix scalar=0.7,batch=0.2,capped=0.1

Everything here is measurement harness, not simulation code: pure
stdlib, no repro imports, safe to point at any deployment.
"""

from __future__ import annotations

import argparse
import json
import random
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import Any
from urllib.parse import urlsplit

__all__ = [
    "LoadReport",
    "RequestMix",
    "Stage",
    "run_closed_loop",
    "run_open_loop",
    "schedule_arrivals",
]

#: Latency histogram bucket upper bounds (milliseconds, log-spaced).
HISTOGRAM_BUCKETS_MS = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, float("inf")
)

#: Applications in the default body pool (small worlds: the goal is
#: service-stack load, not simulation depth).
_APPS = ("CG-16", "MG-8", "BT-MZ-8", "IS-16")
_GEARS = ("uniform:4", "uniform:6")
_ITERATIONS = (2, 3)


@dataclass(frozen=True)
class Stage:
    """One leg of an open-loop arrival schedule."""

    duration_s: float
    rate_rps: float


class RequestMix:
    """Weighted, seeded generator of request bodies.

    ``weights`` maps kind -> relative weight over the built-in kinds
    ``scalar`` (plain balance), ``batch`` (a ``candidates`` sweep) and
    ``capped`` (a ``power_cap`` body).  Bodies are drawn from a small
    parameter pool, so a finite set of distinct cache identities
    recurs — the knob that makes hit ratios realistic.
    """

    KINDS = ("scalar", "batch", "capped")

    def __init__(self, weights: dict[str, float] | None = None):
        weights = weights or {"scalar": 0.7, "batch": 0.2, "capped": 0.1}
        unknown = set(weights) - set(self.KINDS)
        if unknown:
            raise ValueError(f"unknown mix kind(s) {sorted(unknown)}")
        self.kinds = [k for k in self.KINDS if weights.get(k, 0) > 0]
        self.weights = [weights[k] for k in self.kinds]
        if not self.kinds:
            raise ValueError("mix needs at least one positive weight")

    def body(self, rng: random.Random) -> dict[str, Any]:
        kind = rng.choices(self.kinds, weights=self.weights)[0]
        body: dict[str, Any] = {
            "app": rng.choice(_APPS),
            "gears": rng.choice(_GEARS),
            "algorithm": rng.choice(("max", "avg")),
            "iterations": rng.choice(_ITERATIONS),
        }
        if kind == "batch":
            body["candidates"] = [
                {"gears": g} for g in _GEARS
            ]
        elif kind == "capped":
            body["power_cap"] = rng.choice((800.0, 1200.0))
        return body

    @classmethod
    def parse(cls, text: str) -> RequestMix:
        """``scalar=0.7,batch=0.2,capped=0.1`` -> a RequestMix."""
        weights = {}
        for part in text.split(","):
            name, _, value = part.partition("=")
            weights[name.strip()] = float(value)
        return cls(weights)


@dataclass
class LoadReport:
    """Aggregate of one load-test run."""

    mode: str
    duration_s: float
    latencies_ms: list[float] = field(default_factory=list)
    statuses: dict[str, int] = field(default_factory=dict)
    cache_states: dict[str, int] = field(default_factory=dict)
    errors: int = 0

    def record(
        self, latency_s: float, status: int, cache_state: str | None
    ) -> None:
        self.latencies_ms.append(latency_s * 1e3)
        self.statuses[str(status)] = self.statuses.get(str(status), 0) + 1
        if status == 0:
            self.errors += 1
        if cache_state:
            self.cache_states[cache_state] = (
                self.cache_states.get(cache_state, 0) + 1
            )

    @property
    def requests(self) -> int:
        return len(self.latencies_ms)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    def percentile(self, p: float) -> float:
        """p in [0, 100] -> latency in ms (0 when empty)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        idx = min(
            len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1)))
        )
        return ordered[idx]

    def histogram(self) -> dict[str, int]:
        counts = dict.fromkeys(
            (f"le_{b:g}ms" for b in HISTOGRAM_BUCKETS_MS), 0
        )
        for latency in self.latencies_ms:
            for bound in HISTOGRAM_BUCKETS_MS:
                if latency <= bound:
                    counts[f"le_{bound:g}ms"] += 1
                    break
        return counts

    def to_json(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "throughput_rps": round(self.throughput_rps, 2),
            "errors": self.errors,
            "statuses": dict(sorted(self.statuses.items())),
            "cache_states": dict(sorted(self.cache_states.items())),
            "latency_ms": {
                "p50": round(self.percentile(50), 3),
                "p90": round(self.percentile(90), 3),
                "p99": round(self.percentile(99), 3),
                "max": round(max(self.latencies_ms), 3)
                if self.latencies_ms else 0.0,
            },
            "histogram": self.histogram(),
        }

    def render(self) -> str:
        j = self.to_json()
        lines = [
            f"{self.mode} loop: {j['requests']} requests in "
            f"{j['duration_s']:.1f}s -> {j['throughput_rps']:.1f} req/s, "
            f"{j['errors']} errors",
            f"  latency p50={j['latency_ms']['p50']:.1f}ms "
            f"p90={j['latency_ms']['p90']:.1f}ms "
            f"p99={j['latency_ms']['p99']:.1f}ms "
            f"max={j['latency_ms']['max']:.1f}ms",
            f"  statuses {j['statuses']}  cache {j['cache_states']}",
        ]
        return "\n".join(lines)


def _split_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    assert parts.hostname is not None
    return parts.hostname, parts.port or 80


def _post_balance(
    conn: HTTPConnection, body: dict[str, Any]
) -> tuple[int, str | None]:
    payload = json.dumps(body).encode()
    conn.request(
        "POST", "/v1/balance", body=payload,
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    response.read()
    return response.status, response.headers.get("X-Cache")


def schedule_arrivals(
    stages: list[Stage], mix: RequestMix, seed: int
) -> list[tuple[float, dict[str, Any]]]:
    """The exact ``(arrival_time, body)`` list an open-loop run fires.

    Exposed so callers (the CI bench) can pre-warm precisely the
    bodies a seeded schedule will request — warmup and measurement
    can never drift apart.
    """
    rng = random.Random(seed)
    arrivals: list[tuple[float, dict[str, Any]]] = []
    offset = 0.0
    for stage in stages:
        count = max(1, int(stage.duration_s * stage.rate_rps))
        for i in range(count):
            arrivals.append(
                (offset + i / stage.rate_rps, mix.body(rng))
            )
        offset += stage.duration_s
    return arrivals


def run_open_loop(
    url: str,
    stages: list[Stage],
    mix: RequestMix | None = None,
    *,
    seed: int = 0,
    timeout: float = 30.0,
) -> LoadReport:
    """Constant-arrival-rate driving: fire on schedule, measure the tail.

    Every arrival gets its own thread and connection (an open-loop
    client never waits for a previous response), so schedules are
    bounded by thread capacity — a few thousand arrivals total is the
    sane ceiling, plenty for a smoke-level SLO check.
    """
    mix = mix or RequestMix()
    host, port = _split_url(url)
    arrivals = schedule_arrivals(stages, mix, seed)
    total = sum(stage.duration_s for stage in stages)
    report = LoadReport(mode="open", duration_s=total)
    lock = threading.Lock()
    start = time.perf_counter()

    def fire(at: float, body: dict[str, Any]) -> None:
        delay = at - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        conn = HTTPConnection(host, port, timeout=timeout)
        begin = time.perf_counter()
        try:
            status, cache_state = _post_balance(conn, body)
        except OSError:
            status, cache_state = 0, None
        finally:
            conn.close()
        latency = time.perf_counter() - begin
        with lock:
            report.record(latency, status, cache_state)

    threads = [
        threading.Thread(target=fire, args=a, daemon=True)
        for a in arrivals
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + total + 10)
    return report


def run_closed_loop(
    url: str,
    bodies: list[dict[str, Any]],
    *,
    concurrency: int = 8,
    duration_s: float = 5.0,
    timeout: float = 30.0,
) -> LoadReport:
    """Back-to-back driving over persistent connections.

    Workers cycle through ``bodies`` (round-robin from a shared
    counter) until the deadline; the completion rate is the
    sustainable throughput at this concurrency.
    """
    host, port = _split_url(url)
    report = LoadReport(mode="closed", duration_s=duration_s)
    lock = threading.Lock()
    counter = iter(range(1 << 62))
    deadline = time.perf_counter() + duration_s

    def worker() -> None:
        conn = HTTPConnection(host, port, timeout=timeout)
        try:
            while time.perf_counter() < deadline:
                body = bodies[next(counter) % len(bodies)]
                begin = time.perf_counter()
                try:
                    status, cache_state = _post_balance(conn, body)
                except OSError:
                    conn.close()
                    conn = HTTPConnection(host, port, timeout=timeout)
                    status, cache_state = 0, None
                latency = time.perf_counter() - begin
                with lock:
                    report.record(latency, status, cache_state)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(concurrency)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=duration_s + timeout + 10)
    report.duration_s = time.perf_counter() - started
    return report


def _parse_stages(text: str) -> list[Stage]:
    """``3x20,5x50`` -> [Stage(3, 20), Stage(5, 50)]."""
    stages = []
    for part in text.split(","):
        duration, _, rate = part.partition("x")
        stages.append(Stage(float(duration), float(rate)))
    return stages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="open/closed-loop load generator for repro serve"
    )
    parser.add_argument("--url", default="http://127.0.0.1:8080")
    parser.add_argument(
        "--mode", choices=("open", "closed"), default="open"
    )
    parser.add_argument(
        "--stages", default="5x10",
        help="open-loop schedule: comma list of DURxRATE legs "
        "(seconds x req/s), e.g. 3x20,5x50",
    )
    parser.add_argument(
        "--mix", default="scalar=0.7,batch=0.2,capped=0.1",
        help="body mix weights over scalar/batch/capped",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop worker count",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="closed-loop run length in seconds",
    )
    parser.add_argument(
        "--bodies", type=int, default=12,
        help="closed-loop distinct-body pool size",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    mix = RequestMix.parse(args.mix)
    if args.mode == "open":
        report = run_open_loop(
            args.url, _parse_stages(args.stages), mix, seed=args.seed
        )
    else:
        rng = random.Random(args.seed)
        bodies = [mix.body(rng) for _ in range(args.bodies)]
        report = run_closed_loop(
            args.url, bodies, concurrency=args.concurrency,
            duration_s=args.duration,
        )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.errors == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
