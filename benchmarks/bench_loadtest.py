"""Fleet load test — replica scaling and tail-latency ceilings.

Drives real subprocess fleets (``FleetThread``: supervisor + router +
N ``repro serve`` replicas with process-pool workers) with the
open/closed-loop generator from :mod:`benchmarks.loadtest` and holds
the service to the numbers recorded in
``benchmarks/baselines/loadtest.json``:

* **replica scaling** — warm-path closed-loop throughput of a
  3-replica fleet must be at least ``min_scaling_3v1`` (2x) that of a
  1-replica fleet, both measured through their routers so the hop is
  priced into both sides;
* **tail latency** — a seeded open-loop arrival schedule against the
  warmed 1-replica fleet must keep p99 under ``warm_p99_ms_max``;
* **fleet semantics under load** — responses stay byte-identical
  across fleet shapes, and a concurrent burst of one new body
  coalesces fleet-wide (one miss, the rest single-flight followers).

The throughput and latency assertions only engage on hosts with at
least ``MIN_CORES`` CPUs (the CI runner class the baseline was
recorded on); a 1-core dev container still runs every test for the
functional assertions, it just skips the performance gates.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

import pytest

from benchmarks.loadtest import (
    RequestMix,
    Stage,
    run_closed_loop,
    run_open_loop,
    schedule_arrivals,
)
from repro.service import FleetConfig, FleetThread

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "loadtest.json").read_text()
)
ACCEPT = BASELINE["acceptance"]

#: Performance gates need real parallelism; below this the host can
#: only show functional behaviour, not scaling.
MIN_CORES = 4
SEED = 7
STAGES = [Stage(2.0, 10.0), Stage(3.0, 20.0)]
SCALAR_MIX = RequestMix({"scalar": 1.0})
MIXED = RequestMix({"scalar": 0.7, "batch": 0.2, "capped": 0.1})

perf_gated = pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CORES,
    reason=f"performance gates need >= {MIN_CORES} cores",
)


def _fleet(tmp_path_factory, replicas: int) -> FleetThread:
    cache = tmp_path_factory.mktemp(f"loadtest-fleet{replicas}")
    return FleetThread(FleetConfig(
        port=0,
        replicas=replicas,
        workers=1,
        queue_limit=64,
        cache_dir=str(cache),
        iterations=2,
        drain_linger=0.2,
    ))


@pytest.fixture(scope="module")
def fleet1(tmp_path_factory):
    with _fleet(tmp_path_factory, 1) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def fleet3(tmp_path_factory):
    with _fleet(tmp_path_factory, 3) as fleet:
        yield fleet


def _warm(fleet: FleetThread, bodies: list[dict]) -> None:
    """Prime every distinct body once (sequentially, via the router)."""
    client = fleet.client
    seen: set[str] = set()
    for body in bodies:
        key = json.dumps(body, sort_keys=True)
        if key in seen:
            continue
        seen.add(key)
        response = client.balance(**body)
        assert response.status == 200, response.body


def _scalar_pool(n: int = 12) -> list[dict]:
    import random

    rng = random.Random(SEED)
    pool: list[dict] = []
    seen: set[str] = set()
    while len(pool) < n:
        body = SCALAR_MIX.body(rng)
        key = json.dumps(body, sort_keys=True)
        if key not in seen:
            seen.add(key)
            pool.append(body)
    return pool


def _url(fleet: FleetThread) -> str:
    return f"http://{fleet.supervisor.config.host}:{fleet.port}"


def test_open_loop_tail_latency(fleet1):
    """Seeded arrival schedule against a warmed fleet: p99 under the SLO."""
    bodies = [body for _, body in schedule_arrivals(STAGES, MIXED, SEED)]
    _warm(fleet1, bodies)
    report = run_open_loop(_url(fleet1), STAGES, MIXED, seed=SEED)

    assert report.errors == 0
    assert set(report.statuses) == {"200"}
    assert report.requests == len(bodies)
    # everything was pre-warmed: the fleet serves from cache
    assert report.cache_states.get("miss", 0) == 0
    if (os.cpu_count() or 1) >= MIN_CORES:
        p99 = report.percentile(99)
        assert p99 <= ACCEPT["warm_p99_ms_max"], (
            f"open-loop warm p99 {p99:.1f}ms exceeds the "
            f"{ACCEPT['warm_p99_ms_max']}ms ceiling\n{report.render()}"
        )


@perf_gated
def test_closed_loop_replica_scaling(fleet1, fleet3):
    """3 replicas must serve the warm path >= 2x faster than 1 replica.

    Distinct bodies stripe across the consistent-hash ring, so the
    3-replica fleet answers from three event loops; both sides pay
    the router hop.  Best-of-two runs per fleet to shrug off warmup
    and scheduler noise.
    """
    bodies = _scalar_pool()
    results = {}
    for name, fleet in (("fleet1", fleet1), ("fleet3", fleet3)):
        _warm(fleet, bodies)
        best = 0.0
        for _ in range(2):
            report = run_closed_loop(
                _url(fleet), bodies, concurrency=8, duration_s=4.0
            )
            assert report.errors == 0, report.render()
            best = max(best, report.throughput_rps)
        results[name] = best

    scaling = results["fleet3"] / results["fleet1"]
    assert scaling >= ACCEPT["min_scaling_3v1"], (
        f"3-replica fleet scaled only {scaling:.2f}x over 1 replica "
        f"({results['fleet3']:.0f} vs {results['fleet1']:.0f} req/s); "
        f"baseline demands >= {ACCEPT['min_scaling_3v1']}x"
    )


def test_responses_identical_across_fleet_shapes(fleet1, fleet3):
    """The fleet topology must be invisible in response bytes."""
    body = _scalar_pool(1)[0]
    replies = []
    for fleet in (fleet1, fleet3):
        for _ in range(2):
            response = fleet.client.balance(**body)
            assert response.status == 200, response.body
            replies.append(response.body)
        # second identical request is served warm by the same owner
        assert response.headers["X-Cache"] in ("hit", "peer")
    assert len({r for r in replies}) == 1, (
        "response bytes differ between 1-replica and 3-replica fleets"
    )


def test_fleet_coalesces_concurrent_burst(fleet3):
    """One new body, six concurrent clients: one miss, five followers.

    The router hashes all six onto the same ring owner, whose
    single-flight table runs the simulation once — fleet-wide
    coalescing, not per-connection luck.
    """
    body = {
        "app": "CG-16", "gears": "uniform:4", "algorithm": "max",
        "iterations": 3, "beta": 0.44,
    }
    burst = 6
    results = [None] * burst

    def fire(i):
        results[i] = fleet3.client.balance(**body)

    threads = [
        threading.Thread(target=fire, args=(i,)) for i in range(burst)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert all(r.status == 200 for r in results)
    states = sorted(r.headers["X-Cache"] for r in results)
    assert states.count("miss") == 1, states
    assert states.count("coalesced") == burst - 1, states
    assert len({r.body for r in results}) == 1


def test_baseline_acceptance_is_sane():
    """The committed baseline must keep its enforced thresholds intact."""
    assert ACCEPT["min_scaling_3v1"] >= 2.0
    assert 0 < ACCEPT["warm_p99_ms_max"] <= 1000
    assert BASELINE["benchmark"] == "bench_loadtest.py"
    for section in ("open_loop", "closed_loop"):
        assert section in BASELINE["results"]
