"""Figure 10 — MAX vs AVG head-to-head."""

from benchmarks.conftest import regenerate


def test_fig10(benchmark):
    result = regenerate(benchmark, "fig10")
    rows = {r["application"]: r for r in result.rows}

    for app, row in rows.items():
        # MAX saves more CPU energy; AVG wins on execution time
        assert row["energy_max_pct"] <= row["energy_avg_pct"] + 1.0
        assert row["time_avg_pct"] <= row["time_max_pct"] + 0.5

    # PEPC: AVG reduces the two-phase time penalty relative to MAX
    pepc = rows["PEPC-128"]
    assert pepc["time_max_pct"] > 105.0
    assert pepc["time_avg_pct"] < pepc["time_max_pct"]

    # headline numbers: ~60% savings available for the most imbalanced
    assert rows["BT-MZ-32"]["energy_max_pct"] < 50.0
    assert rows["IS-32"]["energy_max_pct"] < 50.0
