"""Figure 4 — exponential gear sets (3–7 gears)."""

from benchmarks.conftest import regenerate


def test_fig4(benchmark):
    result = regenerate(benchmark, "fig4")
    energy = result.pivot("application", "gears", "normalized_energy_pct")

    # WRF saves energy with 3 exponential gears (needed 4 uniform ones)
    assert energy["WRF-32"][3] < 99.0
    assert energy["WRF-128"][3] < 99.0
    # MG-32 saves with 4 exponential gears (needed 6 uniform ones)
    assert energy["MG-32"][4] < 99.0

    # at 6-7 gears exponential and uniform are comparable for the
    # imbalanced apps (both clamped at the 0.8 GHz floor)
    assert abs(energy["BT-MZ-32"][6] - energy["BT-MZ-32"][7]) < 2.0

    # more gears never hurt much
    for app, row in energy.items():
        assert row[7] <= row[3] + 1.0
