"""Batched balance planner vs the scalar sweep on a placement grid.

The perf claim of :class:`repro.core.batchbalance.BatchBalancePlanner`
is *sharing*: one baseline replay, one stacked frequency matrix, one
chunked vectorised pricing pass and one vectorised energy integration
for K sweep cells, where the scalar path pays K full
``balance_trace`` calls.  This benchmark prices a gearopt-shaped
sweep (``K`` uniform 6-gear sets on a fine ``fmin`` placement grid)
against one recorded BT-MZ-32 trace two ways:

* ``scalar_loop`` — one ``PowerAwareLoadBalancer.balance_trace`` per
  candidate on the *compiled* engine (the fastest pre-planner sweep,
  with the memoised baseline already credited to it);
* ``batched``     — one ``BatchBalancePlanner.plan_trace`` call.

Both sides re-record their per-trace caches each round (compile cost
included on both), produce byte-identical ``to_json()`` payloads
(asserted), and the batched pass must be ≥ 5× faster — the acceptance
criterion recorded in ``benchmarks/baselines/sweep.json``.  Runs
standalone in CI smoke mode (``--benchmark-disable``) via the
``_timed`` wall-clock ledger.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.apps import build_app
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.batchbalance import BatchBalancePlanner, SweepCandidate
from repro.core.gears import uniform_gear_set
from repro.core.timemodel import BetaTimeModel
from repro.netsim.platform import MYRINET_LIKE
from repro.netsim.simulator import MpiSimulator

APP = "BT-MZ-32"
ITERATIONS = 4
K = 250  # sweep cells (acceptance floor is 50)

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}

_WORLD: dict[str, object] = {}


def _world():
    """(trace, candidate list) for the sweep, built once per session."""
    if not _WORLD:
        app = build_app(APP, iterations=ITERATIONS)
        sim = MpiSimulator(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
        _WORLD["trace"] = sim.run(
            app.programs(), record_trace=True, meta={"name": APP}
        ).trace
        _WORLD["candidates"] = [
            SweepCandidate(uniform_gear_set(6, fmin=float(f)))
            for f in np.linspace(0.8, 1.6, K)
        ]
    return _WORLD["trace"], _WORLD["candidates"]


def _fresh(trace):
    """A cache-free copy, so per-trace memos never hide shared costs."""
    return type(trace).from_streams(
        (s.records for s in trace), meta=trace.meta
    )


def _payloads(reports):
    return [json.dumps(r.to_json(), sort_keys=True) for r in reports]


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def test_scalar_balance_sweep(benchmark):
    """The pre-planner sweep: one balance_trace call per candidate."""
    trace, candidates = _world()

    def sweep():
        fresh = _fresh(trace)
        return [
            PowerAwareLoadBalancer(
                gear_set=c.gear_set, engine="compiled"
            ).balance_trace(fresh)
            for c in candidates
        ]

    reports = benchmark.pedantic(
        lambda: _timed("scalar_loop", sweep), rounds=1, iterations=1
    )
    assert len(reports) == K
    _WORLD["scalar_payloads"] = _payloads(reports)


def test_batched_planner_sweep(benchmark):
    """One plan_trace call prices the whole grid."""
    trace, candidates = _world()

    def sweep():
        return BatchBalancePlanner(engine="compiled").plan_trace(
            _fresh(trace), candidates
        )

    reports = benchmark.pedantic(
        lambda: _timed("batched", sweep), rounds=3, iterations=1
    )
    assert len(reports) == K

    scalar_payloads = _WORLD.get("scalar_payloads")
    if scalar_payloads is not None:  # full-file run: identity + speedup
        assert _payloads(reports) == scalar_payloads, (
            "batched sweep reports diverged from the scalar path"
        )
        scalar, batched = _TIMINGS["scalar_loop"], _TIMINGS["batched"]
        benchmark.extra_info["sweep_candidates"] = K
        benchmark.extra_info["speedup_vs_scalar"] = round(
            scalar / batched, 1
        )
        assert batched * 5.0 <= scalar, (
            f"batched sweep ({batched * 1e3:.1f} ms) is not 5x faster "
            f"than the scalar loop ({scalar * 1e3:.1f} ms) over {K} "
            "candidates"
        )
