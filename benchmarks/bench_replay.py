"""Compiled replay kernel vs the DES on an assignment sweep.

The perf claim of the compiled engine is *amortisation*: compile one
world once, then price many frequency assignments without the event
heap.  This benchmark replays one recorded BT-MZ-32 trace under
``SWEEP`` (≥ 50) per-rank frequency vectors two ways:

* ``des_loop``   — ``MpiSimulator.run_trace(trace, frequencies=f)``
  once per assignment (what every sweep did before the kernel);
* ``compiled``   — ``compile_trace`` + one vectorised
  ``evaluate_many`` pass, compile time *included*.

Both produce bit-identical makespans (asserted), and the compiled
path must be ≥ 10× faster — the acceptance criterion recorded in
``benchmarks/baselines/replay.json``.  Runs standalone in CI smoke
mode (``--benchmark-disable``) via the ``_timed`` wall-clock ledger.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps import build_app
from repro.core.timemodel import BetaTimeModel
from repro.netsim.compiled import CompiledReplayEngine
from repro.netsim.simulator import MpiSimulator
from repro.netsim.platform import MYRINET_LIKE

APP = "BT-MZ-32"
ITERATIONS = 4
SWEEP = 60  # assignments per sweep (acceptance floor is 50)

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}

_WORLD: dict[str, object] = {}


def _world():
    """(trace, frequency matrix) for the sweep, built once per session."""
    if not _WORLD:
        app = build_app(APP, iterations=ITERATIONS)
        sim = MpiSimulator(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
        trace = sim.run(app.programs(), record_trace=True).trace
        rng = np.random.default_rng(2009)
        _WORLD["trace"] = trace
        _WORLD["freqs"] = rng.uniform(0.8, 2.3, size=(SWEEP, trace.nproc))
    return _WORLD["trace"], _WORLD["freqs"]


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def test_des_assignment_sweep(benchmark):
    """The pre-kernel baseline: one full DES replay per assignment."""
    trace, freqs = _world()
    sim = MpiSimulator(MYRINET_LIKE, BetaTimeModel(fmax=2.3))

    def sweep():
        return np.array(
            [sim.run_trace(trace, frequencies=f).execution_time
             for f in freqs]
        )

    makespans = benchmark.pedantic(
        lambda: _timed("des_loop", sweep), rounds=1, iterations=1
    )
    assert makespans.shape == (SWEEP,)
    _WORLD["des_makespans"] = makespans


def test_compiled_assignment_sweep(benchmark):
    """Compile once + one vectorised pass; compile time included."""
    trace, freqs = _world()

    def sweep():
        engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
        # Fresh trace object each round so the per-trace compile cache
        # never hides the compile cost we claim to include.
        fresh = type(trace).from_streams(
            (s.records for s in trace), meta=trace.meta
        )
        return engine.evaluate_assignments(fresh, freqs)["execution_time"]

    makespans = benchmark.pedantic(
        lambda: _timed("compiled", sweep), rounds=3, iterations=1
    )
    assert makespans.shape == (SWEEP,)

    des_makespans = _WORLD.get("des_makespans")
    if des_makespans is not None:  # full-file run: exactness + speedup
        assert np.array_equal(makespans, des_makespans), (
            "compiled sweep diverged from the DES loop"
        )
        des, compiled = _TIMINGS["des_loop"], _TIMINGS["compiled"]
        benchmark.extra_info["sweep_assignments"] = SWEEP
        benchmark.extra_info["speedup_vs_des"] = round(des / compiled, 1)
        assert compiled * 10.0 <= des, (
            f"compiled sweep ({compiled * 1e3:.1f} ms) is not 10x faster "
            f"than the DES loop ({des * 1e3:.1f} ms) over {SWEEP} "
            "assignments"
        )


def test_compiled_scalar_evaluations(benchmark):
    """The balancer path: per-assignment scalar evaluate on one compile."""
    trace, freqs = _world()
    engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
    program = engine.compile_trace(trace)

    def sweep():
        return [program.evaluate(f).execution_time for f in freqs]

    makespans = benchmark.pedantic(
        lambda: _timed("compiled_scalar", sweep), rounds=3, iterations=1
    )
    assert len(makespans) == SWEEP
    des_makespans = _WORLD.get("des_makespans")
    if des_makespans is not None:
        assert np.array_equal(np.array(makespans), des_makespans)
