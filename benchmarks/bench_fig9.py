"""Figure 9 — AVG on the 6-gear set + (2.6 GHz, 1.6 V)."""

from benchmarks.conftest import regenerate


def test_fig9(benchmark):
    result = regenerate(benchmark, "fig9")
    rows = {r["application"]: r for r in result.rows}

    # very imbalanced apps need very few CPUs over-clocked
    for app in ("BT-MZ-32", "IS-32", "IS-64", "PEPC-128"):
        assert rows[app]["overclocked_pct"] < 30.0

    # well balanced apps over-clock large fractions (paper's
    # SPECFEM3D-32 example: ~53%)
    assert max(
        rows[a]["overclocked_pct"]
        for a in ("SPECFEM3D-32", "MG-32", "CG-32", "WRF-128")
    ) > 45.0

    # execution time decreases almost everywhere; PEPC increases but
    # less than under MAX (checked cross-figure in bench_fig10)
    decreased = sum(
        1 for r in result.rows if r["normalized_time_pct"] < 100.0
    )
    assert decreased >= 10

    # EDP improves for the imbalanced majority, not for CG-32/MG-32
    assert rows["CG-32"]["normalized_edp_pct"] > 99.0
    for app in ("BT-MZ-32", "IS-32", "SPECFEM3D-96", "PEPC-128"):
        assert rows[app]["normalized_edp_pct"] < 100.0
