"""Campaign engine — serial vs parallel vs warm-cache wall-clock.

Three runs of the same reduced campaign (compute-heavy, cacheable
experiments over four Table-3 instances):

* ``serial_cold``   — ``jobs=1``, no persistent cache (the old engine);
* ``parallel_cold`` — ``jobs=4`` sharing a cold persistent cache;
* ``warm_cache``    — ``jobs=1`` on a fully primed cache.

The warm run must beat the cold serial run by at least 3× (in
practice it is >10×: every trace simulation and replay is skipped, so
only report formatting remains).  Timings are recorded through
pytest-benchmark like every other ``bench_*`` module, so the perf
trajectory tracks all three.
"""

from __future__ import annotations

from repro.experiments.campaign import reproduce_all
from repro.experiments.runner import RunnerConfig

CAMPAIGN_CONFIG = RunnerConfig(
    iterations=3,
    apps=("BT-MZ-32", "CG-64", "SPECFEM3D-96", "PEPC-128"),
)
EXPERIMENTS = ("fig2", "fig3", "fig9", "table3")

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}


def _campaign(outdir, jobs, cache_dir):
    manifest = reproduce_all(
        outdir,
        CAMPAIGN_CONFIG,
        experiments=EXPERIMENTS,
        echo=lambda *args: None,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    assert manifest["errors"] == 0
    assert set(manifest["experiments"]) == set(EXPERIMENTS)
    return manifest


def test_campaign_serial_cold(benchmark, tmp_path):
    manifest = benchmark.pedantic(
        lambda: _campaign(tmp_path / "out", 1, None), rounds=1, iterations=1
    )
    _TIMINGS["serial_cold"] = manifest["wall_seconds"]
    assert manifest["cache"]["enabled"] is False


def test_campaign_parallel_cold(benchmark, tmp_path):
    manifest = benchmark.pedantic(
        lambda: _campaign(tmp_path / "out", 4, tmp_path / "cache"),
        rounds=1,
        iterations=1,
    )
    _TIMINGS["parallel_cold"] = manifest["wall_seconds"]
    assert manifest["jobs"] == 4
    assert manifest["cache"]["misses"] > 0


def test_campaign_warm_cache(benchmark, tmp_path):
    cache = tmp_path / "cache"
    _campaign(tmp_path / "prime", 1, cache)  # prime every entry
    manifest = benchmark.pedantic(
        lambda: _campaign(tmp_path / "out", 1, cache), rounds=1, iterations=1
    )
    _TIMINGS["warm_cache"] = manifest["wall_seconds"]
    assert manifest["cache"]["misses"] == 0
    assert manifest["cache"]["hits"] > 0

    cold = _TIMINGS.get("serial_cold")
    if cold is not None:  # full-file run: assert the headline speedup
        warm = _TIMINGS["warm_cache"]
        assert warm * 3.0 <= cold, (
            f"warm-cache campaign ({warm:.2f}s) is not 3x faster than "
            f"cold serial ({cold:.2f}s)"
        )
