"""Budget-sweep pricing: batched PowerCapBalancer vs the scalar loop.

The power-cap subsystem's perf claim is that a whole budget grid rides
the same sharing the planner gives MAX/AVG sweeps: one baseline replay,
one stacked frequency matrix, one chunked vectorised pricing pass for K
caps, where the scalar path pays K full ``balance_trace`` calls.  This
benchmark prices a BT-MZ-32 budget grid (K caps spanning tight to
slack) two ways:

* ``scalar_loop`` — one ``PowerAwareLoadBalancer.balance_trace`` per
  cap with ``PowerCapAlgorithm(cap)`` on the *compiled* engine;
* ``batched``     — one ``PowerCapBalancer.cap_sweep_trace`` call.

Both sides re-record their per-trace caches each round, produce
byte-identical ``to_json()`` payloads once the batched side's power
sections are stripped (the scalar loop prices assignments only), and
the batched pass must be ≥ 3× faster — the acceptance criterion
recorded in ``benchmarks/baselines/powercap.json``.  Runs standalone
in CI smoke mode (``--benchmark-disable``) via the ``_timed``
wall-clock ledger.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.apps import build_app
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import uniform_gear_set
from repro.core.power import CpuPowerModel, CpuState
from repro.core.powercap import PowerCapAlgorithm, PowerCapBalancer
from repro.core.timemodel import BetaTimeModel
from repro.netsim.platform import MYRINET_LIKE
from repro.netsim.simulator import MpiSimulator

APP = "BT-MZ-32"
ITERATIONS = 4
K = 250  # budget cells (acceptance floor is 50)

GS = uniform_gear_set(6)

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}

_WORLD: dict[str, object] = {}


def _world():
    """(trace, cap grid) for the sweep, built once per session."""
    if not _WORLD:
        app = build_app(APP, iterations=ITERATIONS)
        sim = MpiSimulator(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
        trace = sim.run(
            app.programs(), record_trace=True, meta={"name": APP}
        ).trace
        _WORLD["trace"] = trace
        ceiling = trace.nproc * CpuPowerModel().power(
            GS.top_gear(), CpuState.COMPUTE
        )
        # tight-but-feasible (the all-fmin floor is near 26%) to slack
        _WORLD["caps"] = [
            float(f) * ceiling for f in np.linspace(0.30, 1.05, K)
        ]
    return _WORLD["trace"], _WORLD["caps"]


def _fresh(trace):
    """A cache-free copy, so per-trace memos never hide shared costs."""
    return type(trace).from_streams(
        (s.records for s in trace), meta=trace.meta
    )


def _payloads(reports):
    """Sorted-key dumps with the power section stripped (the scalar
    loop prices bare assignments; identity is on the priced report)."""
    out = []
    for r in reports:
        body = {k: v for k, v in r.to_json().items() if k != "power"}
        out.append(json.dumps(body, sort_keys=True))
    return out


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def test_scalar_cap_sweep(benchmark):
    """The naive budget sweep: one balance_trace call per cap."""
    trace, caps = _world()

    def sweep():
        fresh = _fresh(trace)
        return [
            PowerAwareLoadBalancer(
                gear_set=GS,
                algorithm=PowerCapAlgorithm(cap),
                engine="compiled",
            ).balance_trace(fresh)
            for cap in caps
        ]

    reports = benchmark.pedantic(
        lambda: _timed("scalar_loop", sweep), rounds=1, iterations=1
    )
    assert len(reports) == K
    _WORLD["scalar_payloads"] = _payloads(reports)


def test_batched_cap_sweep(benchmark):
    """One cap_sweep_trace call prices the whole budget grid."""
    trace, caps = _world()

    def sweep():
        return PowerCapBalancer(
            GS, caps[0], engine="compiled"
        ).cap_sweep_trace(_fresh(trace), caps)

    reports = benchmark.pedantic(
        lambda: _timed("batched", sweep), rounds=3, iterations=1
    )
    assert len(reports) == K
    for cap, r in zip(caps, reports):
        assert r.power["peak_power_w"] <= cap * (1 + 1e-9)

    scalar_payloads = _WORLD.get("scalar_payloads")
    if scalar_payloads is not None:  # full-file run: identity + speedup
        assert _payloads(reports) == scalar_payloads, (
            "batched budget sweep diverged from the scalar path"
        )
        scalar, batched = _TIMINGS["scalar_loop"], _TIMINGS["batched"]
        benchmark.extra_info["budget_cells"] = K
        benchmark.extra_info["speedup_vs_scalar"] = round(
            scalar / batched, 1
        )
        assert batched * 3.0 <= scalar, (
            f"batched budget sweep ({batched * 1e3:.1f} ms) is not 3x "
            f"faster than the scalar loop ({scalar * 1e3:.1f} ms) over "
            f"{K} caps"
        )
        _TIMINGS["speedup"] = scalar / batched
