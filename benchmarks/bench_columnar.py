"""Columnar trace storage at scale: generate → compile → price.

The scaling claim of the columnar path is that a large world never
exists as per-record Python objects: skeletons emit straight into
pooled numpy columns, the compiled engine lowers the columns to its
instruction tape, and ``evaluate_many`` prices a candidate grid in one
vectorised pass.  This benchmark walks a ``RANKS`` × ``CANDIDATES``
grid of BT-MZ worlds through all three stages, records wall time per
stage plus the process peak RSS, and asserts the ceilings recorded in
``benchmarks/baselines/scale.json``.

At the smallest size the columnar makespans are asserted bit-identical
to the record-path makespans — the correctness contract that lets the
bigger sizes skip the record path entirely (at the top of the grid the
per-record objects would dominate memory, which is the point).

Runs standalone in CI smoke mode (``--benchmark-disable``) via the
``_timed`` wall-clock ledger, like ``bench_replay.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.apps import build_app
from repro.core.timemodel import BetaTimeModel
from repro.netsim.compiled import CompiledReplayEngine
from repro.netsim.platform import MYRINET_LIKE
from repro.traces import Trace

FAMILY = "BT-MZ"
RANKS = (256, 1024, 4096)
CANDIDATES = 8
ITERATIONS = 2

BASELINE = json.loads(
    (pathlib.Path(__file__).parent / "baselines" / "scale.json").read_text()
)

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}

_WORLDS: dict[int, object] = {}


def _peak_rss_gb() -> float:
    """Process high-water-mark RSS in GiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024**2


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def _candidates(nproc: int) -> np.ndarray:
    rng = np.random.default_rng(2009 + nproc)
    return rng.uniform(0.8, 2.3, size=(CANDIDATES, nproc))


@pytest.mark.parametrize("nproc", RANKS)
def test_columnar_pipeline(benchmark, nproc):
    """One grid point: emit columns, compile, price ``CANDIDATES``."""
    engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))

    def pipeline():
        app = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)
        trace = _timed(
            f"generate/{nproc}", lambda: app.columnar_trace()
        )
        program = _timed(
            f"compile/{nproc}", lambda: engine.compile_trace(trace)
        )
        makespans = _timed(
            f"evaluate/{nproc}",
            lambda: program.evaluate_many(_candidates(nproc))[
                "execution_time"
            ],
        )
        return trace, makespans

    trace, makespans = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert makespans.shape == (CANDIDATES,)
    assert np.all(np.isfinite(makespans)) and np.all(makespans > 0)
    _WORLDS[nproc] = (trace, makespans)

    budget = BASELINE["acceptance"]["stage_seconds_max"][str(nproc)]
    for stage, ceiling in budget.items():
        spent = _TIMINGS[f"{stage}/{nproc}"]
        benchmark.extra_info[stage] = round(spent, 3)
        assert spent <= ceiling, (
            f"{stage} at {nproc} ranks took {spent:.2f}s "
            f"(ceiling {ceiling}s in baselines/scale.json)"
        )
    benchmark.extra_info["events"] = trace.total_records()
    benchmark.extra_info["column_mb"] = round(trace.nbytes() / 1024**2, 1)


def test_columnar_matches_record_path():
    """Smallest grid point: columnar ≡ record path, bit for bit."""
    nproc = RANKS[0]
    if nproc not in _WORLDS:  # standalone invocation of just this test
        app = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)
        trace = app.columnar_trace()
        engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
        makespans = engine.compile_trace(trace).evaluate_many(
            _candidates(nproc)
        )["execution_time"]
        _WORLDS[nproc] = (trace, makespans)
    trace, makespans = _WORLDS[nproc]

    app = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)
    record_trace = Trace.from_streams(
        app.programs(), meta={"name": app.name}
    )
    engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
    record_makespans = engine.compile_trace(record_trace).evaluate_many(
        _candidates(nproc)
    )["execution_time"]
    assert np.array_equal(makespans, record_makespans), (
        "columnar pipeline diverged from the record path"
    )
    assert [view.records for view in trace] == [
        list(stream) for stream in record_trace
    ]


def test_memory_ceiling():
    """Whole-grid peak RSS stays under the recorded ceiling."""
    assert _WORLDS, "run the grid tests first (file order)"
    peak = _peak_rss_gb()
    ceiling = BASELINE["acceptance"]["peak_rss_gb_max"]
    assert peak <= ceiling, (
        f"peak RSS {peak:.2f} GiB exceeds the {ceiling} GiB ceiling "
        "in baselines/scale.json"
    )
    largest = max(_WORLDS)
    trace, _ = _WORLDS[largest]
    per_event = trace.nbytes() / trace.total_records()
    assert per_event <= BASELINE["acceptance"]["bytes_per_event_max"], (
        f"columns cost {per_event:.1f} B/event at {largest} ranks"
    )


# --------------------------------------------------------------------------
# Out-of-core: the 100k-rank world that must NOT fit comfortably in RAM
# --------------------------------------------------------------------------
#
# Two pipelines price the same 102 400-rank world, each in its own
# subprocess so ``ru_maxrss`` isolates its true high-water mark:
#
#   memory — emit columns in-process, compile, one-pass sweep (the
#            status-quo columnar path)
#   mmap   — generate shard-parallel straight to a binary store, reopen
#            memory-mapped, compile zero-copy, price via the bounded
#            chunked sweep (``evaluate_assignments(chunk_size=1)``)
#
# The contract: bit-identical makespans, at a fraction of the RSS.
# Generation workers are child processes, so RUSAGE_SELF charges the
# mmap pipeline only for what the *consumer* keeps resident.

OOC = BASELINE["world"]["out_of_core"]
MIN_CORES = 4

perf_gated = pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CORES,
    reason=f"shard-scaling gate needs >= {MIN_CORES} cores",
)

#: Gathered results for the CI artifact (``REPRO_BENCH_REPORT``).
_REPORT: dict[str, object] = {}

_OOC_PIPELINE = '''\
"""Worker: one full pipeline, printed as JSON (run in a subprocess so
ru_maxrss reflects this pipeline alone)."""
import json, os, resource, sys, tempfile, time

import numpy as np

from repro.apps import build_app
from repro.core.timemodel import BetaTimeModel
from repro.netsim.compiled import CompiledReplayEngine
from repro.netsim.platform import MYRINET_LIKE


def main() -> None:
    mode = sys.argv[1]
    nproc, iters, cands, jobs = (int(a) for a in sys.argv[2:6])
    t0 = time.perf_counter()
    app = build_app(f"BT-MZ-{nproc}", iterations=iters)
    if mode == "memory":
        trace = app.columnar_trace()
    else:
        store = os.path.join(tempfile.mkdtemp(prefix="ooc-"), "world.rpcs")
        trace = app.columnar_trace(jobs=jobs, out=store)
    t1 = time.perf_counter()
    engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
    program = engine.compile_trace(trace)
    t2 = time.perf_counter()
    rng = np.random.default_rng(2009 + nproc)
    grid = rng.uniform(0.8, 2.3, size=(cands, nproc))
    if mode == "memory":
        makespans = program.evaluate_many(grid)["execution_time"]
    else:
        # the out-of-core serving configuration: chunk_size=1 bounds
        # the sweep's per-candidate state and burst temporaries, and is
        # bit-identical to the one-pass sweep by construction
        makespans = engine.evaluate_assignments(
            trace, grid, chunk_size=1
        )["execution_time"]
    t3 = time.perf_counter()
    print(json.dumps({
        "mode": mode,
        "n_events": trace.n_events,
        "generate_s": round(t1 - t0, 2),
        "compile_s": round(t2 - t1, 2),
        "evaluate_s": round(t3 - t2, 2),
        "rss_gb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024**2, 3
        ),
        "makespans": [float(x).hex() for x in makespans],
    }))


if __name__ == "__main__":
    main()
'''


def _run_pipeline(tmp_path: pathlib.Path, mode: str) -> dict:
    """Run one pipeline subprocess and parse its JSON report.

    The worker must be a real file (not ``-c``/stdin): the shard pool
    uses the ``spawn`` start method, which re-imports ``__main__`` by
    path in every worker.
    """
    script = tmp_path / "ooc_pipeline.py"
    script.write_text(_OOC_PIPELINE)
    argv = [
        sys.executable,
        str(script),
        mode,
        str(OOC["ranks"]),
        str(OOC["iterations"]),
        str(OOC["candidates"]),
        str(OOC["jobs"]),
    ]
    proc = subprocess.run(
        argv, capture_output=True, text=True, timeout=1800
    )
    assert proc.returncode == 0, (
        f"{mode} pipeline failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(proc.stdout.splitlines()[-1])


def test_out_of_core_identity_and_rss(tmp_path):
    """102 400 ranks: mmap pipeline prices bit-identically to the
    in-memory pipeline at a fraction of its RSS."""
    memory = _run_pipeline(tmp_path, "memory")
    mapped = _run_pipeline(tmp_path, "mmap")
    _REPORT["out_of_core"] = {"memory": memory, "mmap": mapped}

    assert memory["n_events"] == mapped["n_events"] == OOC["events"]
    assert mapped["makespans"] == memory["makespans"], (
        "mmap pipeline diverged bit-wise from the in-memory pipeline"
    )

    gates = BASELINE["acceptance"]["out_of_core"]
    ratio = mapped["rss_gb"] / memory["rss_gb"]
    assert ratio <= gates["rss_ratio_max"], (
        f"mmap pipeline RSS {mapped['rss_gb']:.2f} GiB is "
        f"{ratio:.2f}x the in-memory {memory['rss_gb']:.2f} GiB "
        f"(gate {gates['rss_ratio_max']}x)"
    )
    assert mapped["rss_gb"] <= gates["rss_gb_max"], (
        f"mmap pipeline RSS {mapped['rss_gb']:.2f} GiB exceeds the "
        f"{gates['rss_gb_max']} GiB absolute ceiling"
    )
    budget = gates["stage_seconds_max"]
    for stage in ("generate_s", "compile_s", "evaluate_s"):
        ceiling = budget[stage.removesuffix("_s")]
        assert mapped[stage] <= ceiling, (
            f"out-of-core {stage} took {mapped[stage]:.1f}s "
            f"(ceiling {ceiling}s in baselines/scale.json)"
        )


def test_balance_report_identity_from_store(tmp_path):
    """`BalanceReport.to_json()` is byte-identical whether the trace is
    priced from in-memory columns or from a memory-mapped store (the
    grid's top size; the 102k case above pins the makespans)."""
    from repro.core.balancer import PowerAwareLoadBalancer
    from repro.core.gears import uniform_gear_set
    from repro.traces.columnar import ColumnarTrace

    nproc = RANKS[-1]
    trace = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)\
        .columnar_trace()
    store = tmp_path / "grid.rpcs"
    trace.save(store)
    mapped = ColumnarTrace.open(store, mmap=True)
    try:
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        r_mem = balancer.balance_trace(trace).to_json()
        r_map = balancer.balance_trace(mapped).to_json()
        assert json.dumps(r_mem, sort_keys=True) == json.dumps(
            r_map, sort_keys=True
        ), "balance report diverged between mapped and in-memory columns"
    finally:
        mapped.detach_mapping()


@perf_gated
def test_shard_parallel_generation_scales(tmp_path):
    """Sharded generation beats sequential by the recorded factor on a
    multi-core host (generation itself, store-to-store both ways)."""
    nproc, iters = OOC["ranks"], OOC["iterations"]
    app = build_app(f"BT-MZ-{nproc}", iterations=iters)
    t0 = time.perf_counter()
    seq = app.columnar_trace(jobs=1, out=str(tmp_path / "seq.rpcs"))
    t_seq = time.perf_counter() - t0
    seq.detach_mapping()

    t0 = time.perf_counter()
    par = app.columnar_trace(
        jobs=OOC["jobs"], out=str(tmp_path / "par.rpcs")
    )
    t_par = time.perf_counter() - t0
    par.detach_mapping()

    speedup = t_seq / t_par
    _REPORT["shard_scaling"] = {
        "jobs": OOC["jobs"],
        "sequential_s": round(t_seq, 2),
        "parallel_s": round(t_par, 2),
        "speedup": round(speedup, 2),
    }
    floor = BASELINE["acceptance"]["out_of_core"]["shard_scaling_min"]
    assert speedup >= floor, (
        f"jobs={OOC['jobs']} generation sped up only {speedup:.2f}x "
        f"over jobs=1 (floor {floor}x in baselines/scale.json)"
    )


_LOADS_PROBE = '''\
"""Worker: peak-RSS delta of loads_trace over a pre-read document."""
import json, resource, sys

from repro.traces.jsonio import loads_trace


def _peak_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def main() -> None:
    text = open(sys.argv[1], encoding="utf-8").read()
    before = _peak_kb()
    trace = loads_trace(text, columnar=True)
    delta = _peak_kb() - before
    print(json.dumps({
        "text_mb": round(len(text) / 1024**2, 2),
        "delta_mb": round(delta / 1024, 2),
        "n_events": trace.n_events,
    }))


if __name__ == "__main__":
    main()
'''


def test_loads_trace_streams(tmp_path):
    """``loads_trace(..., columnar=True)`` builds columns straight from
    the document: its peak-RSS delta stays below the document size
    (the old path buffered a full second copy through ``StringIO``)."""
    from repro.traces.jsonio import write_trace

    app = build_app("BT-MZ-8192", iterations=2)
    doc = tmp_path / "world.jsonl"
    write_trace(app.columnar_trace(), str(doc))

    script = tmp_path / "loads_probe.py"
    script.write_text(_LOADS_PROBE)
    proc = subprocess.run(
        [sys.executable, str(script), str(doc)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    out = json.loads(proc.stdout.splitlines()[-1])
    _REPORT["loads_trace"] = out

    assert out["n_events"] == 8192 * 20 * 2  # 20 events/rank/iteration
    ceiling = BASELINE["acceptance"]["out_of_core"]["loads_overhead_max"]
    assert out["delta_mb"] <= ceiling * out["text_mb"], (
        f"loads_trace peaked {out['delta_mb']:.1f} MiB over the "
        f"{out['text_mb']:.1f} MiB document (gate {ceiling}x) — "
        "is it buffering a second copy of the text?"
    )


def test_emit_bench_report():
    """Persist the gathered numbers for the CI artifact when asked."""
    path = os.environ.get("REPRO_BENCH_REPORT")
    report = {
        "baseline": "benchmarks/baselines/scale.json",
        "timings_s": {k: round(v, 3) for k, v in sorted(_TIMINGS.items())},
        **_REPORT,
    }
    if path:
        pathlib.Path(path).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        assert pathlib.Path(path).exists()
