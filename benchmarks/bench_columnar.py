"""Columnar trace storage at scale: generate → compile → price.

The scaling claim of the columnar path is that a large world never
exists as per-record Python objects: skeletons emit straight into
pooled numpy columns, the compiled engine lowers the columns to its
instruction tape, and ``evaluate_many`` prices a candidate grid in one
vectorised pass.  This benchmark walks a ``RANKS`` × ``CANDIDATES``
grid of BT-MZ worlds through all three stages, records wall time per
stage plus the process peak RSS, and asserts the ceilings recorded in
``benchmarks/baselines/scale.json``.

At the smallest size the columnar makespans are asserted bit-identical
to the record-path makespans — the correctness contract that lets the
bigger sizes skip the record path entirely (at the top of the grid the
per-record objects would dominate memory, which is the point).

Runs standalone in CI smoke mode (``--benchmark-disable``) via the
``_timed`` wall-clock ledger, like ``bench_replay.py``.
"""

from __future__ import annotations

import json
import pathlib
import resource
import time

import numpy as np
import pytest

from repro.apps import build_app
from repro.core.timemodel import BetaTimeModel
from repro.netsim.compiled import CompiledReplayEngine
from repro.netsim.platform import MYRINET_LIKE
from repro.traces import Trace

FAMILY = "BT-MZ"
RANKS = (256, 1024, 4096)
CANDIDATES = 8
ITERATIONS = 2

BASELINE = json.loads(
    (pathlib.Path(__file__).parent / "baselines" / "scale.json").read_text()
)

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}

_WORLDS: dict[int, object] = {}


def _peak_rss_gb() -> float:
    """Process high-water-mark RSS in GiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024**2


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def _candidates(nproc: int) -> np.ndarray:
    rng = np.random.default_rng(2009 + nproc)
    return rng.uniform(0.8, 2.3, size=(CANDIDATES, nproc))


@pytest.mark.parametrize("nproc", RANKS)
def test_columnar_pipeline(benchmark, nproc):
    """One grid point: emit columns, compile, price ``CANDIDATES``."""
    engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))

    def pipeline():
        app = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)
        trace = _timed(
            f"generate/{nproc}", lambda: app.columnar_trace()
        )
        program = _timed(
            f"compile/{nproc}", lambda: engine.compile_trace(trace)
        )
        makespans = _timed(
            f"evaluate/{nproc}",
            lambda: program.evaluate_many(_candidates(nproc))[
                "execution_time"
            ],
        )
        return trace, makespans

    trace, makespans = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert makespans.shape == (CANDIDATES,)
    assert np.all(np.isfinite(makespans)) and np.all(makespans > 0)
    _WORLDS[nproc] = (trace, makespans)

    budget = BASELINE["acceptance"]["stage_seconds_max"][str(nproc)]
    for stage, ceiling in budget.items():
        spent = _TIMINGS[f"{stage}/{nproc}"]
        benchmark.extra_info[stage] = round(spent, 3)
        assert spent <= ceiling, (
            f"{stage} at {nproc} ranks took {spent:.2f}s "
            f"(ceiling {ceiling}s in baselines/scale.json)"
        )
    benchmark.extra_info["events"] = trace.total_records()
    benchmark.extra_info["column_mb"] = round(trace.nbytes() / 1024**2, 1)


def test_columnar_matches_record_path():
    """Smallest grid point: columnar ≡ record path, bit for bit."""
    nproc = RANKS[0]
    if nproc not in _WORLDS:  # standalone invocation of just this test
        app = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)
        trace = app.columnar_trace()
        engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
        makespans = engine.compile_trace(trace).evaluate_many(
            _candidates(nproc)
        )["execution_time"]
        _WORLDS[nproc] = (trace, makespans)
    trace, makespans = _WORLDS[nproc]

    app = build_app(f"{FAMILY}-{nproc}", iterations=ITERATIONS)
    record_trace = Trace.from_streams(
        app.programs(), meta={"name": app.name}
    )
    engine = CompiledReplayEngine(MYRINET_LIKE, BetaTimeModel(fmax=2.3))
    record_makespans = engine.compile_trace(record_trace).evaluate_many(
        _candidates(nproc)
    )["execution_time"]
    assert np.array_equal(makespans, record_makespans), (
        "columnar pipeline diverged from the record path"
    )
    assert [view.records for view in trace] == [
        list(stream) for stream in record_trace
    ]


def test_memory_ceiling():
    """Whole-grid peak RSS stays under the recorded ceiling."""
    assert _WORLDS, "run the grid tests first (file order)"
    peak = _peak_rss_gb()
    ceiling = BASELINE["acceptance"]["peak_rss_gb_max"]
    assert peak <= ceiling, (
        f"peak RSS {peak:.2f} GiB exceeds the {ceiling} GiB ceiling "
        "in baselines/scale.json"
    )
    largest = max(_WORLDS)
    trace, _ = _WORLDS[largest]
    per_event = trace.nbytes() / trace.total_records()
    assert per_event <= BASELINE["acceptance"]["bytes_per_event_max"], (
        f"columns cost {per_event:.1f} B/event at {largest} ranks"
    )
