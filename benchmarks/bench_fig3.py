"""Figure 3 — energy as a function of load balance."""

import numpy as np

from benchmarks.conftest import regenerate


def test_fig3(benchmark):
    result = regenerate(benchmark, "fig3")
    rows = result.rows  # sorted by LB ascending
    lb = np.array([r["load_balance_pct"] for r in rows])
    unlimited = np.array([r["energy_unlimited_pct"] for r in rows])

    # strong positive correlation between LB and normalized energy
    corr = np.corrcoef(lb, unlimited)[0, 1]
    assert corr > 0.9

    # two gears only help the very imbalanced
    for r in rows:
        if r["load_balance_pct"] > 90.0:
            assert abs(r["energy_uniform-2_pct"] - 100.0) < 1.0
        if r["load_balance_pct"] < 50.0:
            assert r["energy_uniform-2_pct"] < 90.0

    # the most balanced app (CG-32) saves nothing even with 6 gears
    cg32 = next(r for r in rows if r["application"] == "CG-32")
    assert abs(cg32["energy_uniform-6_pct"] - 100.0) < 1.0

    # the headline: up to ~60% savings for the most imbalanced apps
    assert unlimited.min() < 45.0
