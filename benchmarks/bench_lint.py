"""Columnar-native lint at scale: 32k-rank worlds under a RSS ceiling.

The scaling claim of the diagnostics engine mirrors the columnar
storage claim one layer up: linting a 32k-rank BT-MZ world — including
the TR008 wait-for-graph deadlock replay — runs straight off the
pooled numpy columns without ever materialising a record object.  This
benchmark lints one clean 32k-rank world and one deliberately
deadlocked 4096-rank ring, records wall time per stage plus the
process peak RSS, and asserts the ceilings recorded in
``benchmarks/baselines/lint.json``.

The ceilings are the teeth: a regression that round-trips the columnar
world through per-record objects blows the 1 GiB RSS ceiling, and a
quadratic message matcher blows the wall-clock ones.

Runs standalone in CI smoke mode (``--benchmark-disable``) via the
``_timed`` wall-clock ledger, like ``bench_columnar.py``.
"""

from __future__ import annotations

import json
import pathlib
import resource
import time

from repro.apps import build_app
from repro.diagnostics.engine import LintConfig, lint_trace_subject
from repro.netsim.platform import MYRINET_LIKE
from repro.traces.columnar import ColumnarTrace, ColumnarTraceBuilder

FAMILY = "BT-MZ"
RANKS = 32768
ITERATIONS = 4
DEADLOCK_RANKS = 4096

BASELINE = json.loads(
    (pathlib.Path(__file__).parent / "baselines" / "lint.json").read_text()
)
CONFIG = LintConfig()

#: Cross-test wall-clock ledger (tests run in file order).
_TIMINGS: dict[str, float] = {}

_WORLD: dict[str, ColumnarTrace] = {}


def _peak_rss_gb() -> float:
    """Process high-water-mark RSS in GiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024**2


def _timed(label: str, fn):
    """Run ``fn`` once, recording wall time (works with
    ``--benchmark-disable``, where ``benchmark.stats`` is unset)."""
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _TIMINGS[label] = min(_TIMINGS.get(label, elapsed), elapsed)
    return out


def _ring_deadlock(nproc: int) -> ColumnarTrace:
    """Every rank rendezvous-sends to its successor before receiving."""
    big = MYRINET_LIKE.eager_threshold + 1
    builder = ColumnarTraceBuilder(nproc)
    for rank in range(nproc):
        builder.compute(rank, 1.0)
        builder.send(rank, dst=(rank + 1) % nproc, nbytes=big, tag=0)
        builder.recv(rank, src=(rank - 1) % nproc, tag=0)
    return builder.build(meta={"name": f"ring-deadlock-{nproc}"})


def test_lint_clean_32k_world(benchmark):
    """Full trace-rule pass (TR001–TR010) over a clean 32k-rank world."""

    def pipeline():
        trace = _timed(
            "generate",
            lambda: build_app(
                f"{FAMILY}-{RANKS}", iterations=ITERATIONS
            ).columnar_trace(),
        )
        diags = _timed(
            "lint",
            lambda: lint_trace_subject(
                trace, MYRINET_LIKE, f"{FAMILY}-{RANKS}", CONFIG
            ),
        )
        return trace, diags

    trace, diags = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    _WORLD["clean"] = trace
    assert not [d for d in diags if d.code == "DX000"], (
        "a trace rule crashed on the columnar world"
    )
    assert not [d for d in diags if d.code.startswith("TR00")], (
        f"clean BT-MZ world should lint clean, got {[d.code for d in diags]}"
    )

    budget = BASELINE["acceptance"]
    for stage in ("generate", "lint"):
        spent = _TIMINGS[stage]
        benchmark.extra_info[stage] = round(spent, 3)
        ceiling = budget[f"{stage}_seconds_max"]
        assert spent <= ceiling, (
            f"{stage} at {RANKS} ranks took {spent:.2f}s "
            f"(ceiling {ceiling}s in baselines/lint.json)"
        )
    benchmark.extra_info["events"] = trace.total_records()


def test_lint_deadlocked_4k_ring(benchmark):
    """TR008 wait-for-graph replay finds the full-world cycle."""

    def pipeline():
        trace = _ring_deadlock(DEADLOCK_RANKS)
        diags = _timed(
            "deadlock_lint",
            lambda: lint_trace_subject(trace, MYRINET_LIKE, "ring", CONFIG),
        )
        return diags

    diags = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    tr008 = [d for d in diags if d.code == "TR008"]
    assert len(tr008) == 1, "the ring cycle must surface as one TR008"

    spent = _TIMINGS["deadlock_lint"]
    benchmark.extra_info["deadlock_lint"] = round(spent, 3)
    ceiling = BASELINE["acceptance"]["deadlock_lint_seconds_max"]
    assert spent <= ceiling, (
        f"deadlock lint at {DEADLOCK_RANKS} ranks took {spent:.2f}s "
        f"(ceiling {ceiling}s in baselines/lint.json)"
    )


def test_memory_ceiling():
    """Whole-run peak RSS stays under the recorded ceiling."""
    assert _WORLD, "run the lint benchmarks first (file order)"
    peak = _peak_rss_gb()
    ceiling = BASELINE["acceptance"]["peak_rss_gb_max"]
    assert peak <= ceiling, (
        f"peak RSS {peak:.2f} GiB exceeds the {ceiling} GiB ceiling "
        "in baselines/lint.json — did the lint path materialise records?"
    )
