"""Figure 1 — BT-MZ timelines before/after MAX."""

from benchmarks.conftest import regenerate


def test_fig1(benchmark):
    result = regenerate(benchmark, "fig1")
    before = result.rows[0]["compute_fraction_pct"]
    after = result.rows[1]["compute_fraction_pct"]
    # "a lot of time waiting" -> "almost all the time computing"
    assert before < 45.0
    assert after > 90.0
    assert "<svg" in result.series["svg_after"]
