"""Figure 8 — AVG on the continuous set with 10% / 20% over-clocking."""

from benchmarks.conftest import regenerate


def test_fig8(benchmark):
    result = regenerate(benchmark, "fig8")
    rows = {r["application"]: r for r in result.rows}

    # energy reduced for every application...
    for row in result.rows:
        assert row["energy_oc10_pct"] < 100.0
    # ...by an amount ordered by load-balance degree: ~marginal for
    # CG-32, large for BT-MZ (paper: 0.5% .. 63%)
    assert rows["CG-32"]["energy_oc10_pct"] > 95.0
    assert rows["BT-MZ-32"]["energy_oc10_pct"] < 55.0

    # execution time decreases (except PEPC's two-phase pathology)
    for row in result.rows:
        if row["application"] != "PEPC-128":
            assert row["time_oc10_pct"] < 100.5
            assert row["time_oc20_pct"] <= row["time_oc10_pct"] + 0.5

    # EDP improves for everything
    for row in result.rows:
        if row["application"] != "PEPC-128":
            assert row["edp_oc10_pct"] < 100.0
