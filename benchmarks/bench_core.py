"""Microbenchmarks of the substrate: simulator throughput, trace I/O,
assignment speed.

These are genuine pytest-benchmark measurements (multiple rounds) of
the building blocks every figure benchmark exercises, useful to track
performance of the simulation infrastructure itself.
"""

import time

import numpy as np

from repro.apps import build_app, vmpi
from repro.core.algorithms import MaxAlgorithm
from repro.core.gears import uniform_gear_set
from repro.core.timemodel import BetaTimeModel
from repro.netsim.compiled import CompiledReplayEngine
from repro.netsim.simulator import MpiSimulator
from repro.traces.jsonio import dumps_trace, loads_trace


def _mean_seconds(benchmark, fn) -> float:
    """Per-call seconds: benchmark stats, or one manual timing under
    ``--benchmark-disable`` (where ``benchmark.stats`` is unset)."""
    if benchmark.stats:
        return benchmark.stats["mean"]
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_simulator_event_throughput(benchmark):
    """Events/second of the DES core on a collective-heavy world."""
    app = build_app("MG-32", iterations=6)

    def run():
        return MpiSimulator().run(app.programs())

    result = benchmark(run)
    assert result.events > 1000
    benchmark.extra_info["events"] = result.events
    benchmark.extra_info["events_per_sec"] = result.events / _mean_seconds(
        benchmark, run
    )


def test_compiled_kernel_throughput(benchmark):
    """Assignment evaluations/second of the compiled replay kernel."""
    engine = CompiledReplayEngine()
    app = build_app("MG-32", iterations=6)
    recorded = MpiSimulator().run(app.programs(), record_trace=True).trace
    program = engine.compile_trace(recorded)
    rng = np.random.default_rng(7)
    freqs = rng.uniform(0.8, 2.3, size=(100, recorded.nproc))

    def run():
        return program.evaluate_many(freqs)

    batch = benchmark(run)
    assert batch["execution_time"].shape == (100,)
    mean = _mean_seconds(benchmark, run)
    benchmark.extra_info["instructions"] = program.n_instructions
    benchmark.extra_info["evals_per_sec"] = 100 / mean
    benchmark.extra_info["instructions_per_sec"] = (
        program.n_instructions * 100 / mean
    )


def test_simulator_p2p_throughput(benchmark):
    """Point-to-point matching under a 2-D halo workload."""
    nproc = 64

    def programs():
        return [
            [
                rec
                for _ in range(10)
                for rec in vmpi.halo_exchange_2d(rank, nproc, nbytes=8192)
            ]
            for rank in range(nproc)
        ]

    result = benchmark(lambda: MpiSimulator().run(programs()))
    assert result.execution_time > 0


def test_assignment_speed_128_ranks(benchmark):
    """MAX assignment over 128 ranks is micro-work; keep it that way."""
    rng = np.random.default_rng(1)
    times = rng.uniform(0.5, 2.0, size=128)
    gear_set = uniform_gear_set(6)
    model = BetaTimeModel(fmax=2.3, beta=0.5)
    assignment = benchmark(lambda: MaxAlgorithm().assign(times, gear_set, model))
    assert assignment.nproc == 128


def test_trace_serialisation_round_trip(benchmark):
    """JSON-lines round trip of a full application trace."""
    app = build_app("CG-64", iterations=4)
    trace = MpiSimulator().run(app.programs(), record_trace=True).trace

    def round_trip():
        return loads_trace(dumps_trace(trace))

    reloaded = benchmark(round_trip)
    assert reloaded.total_records() == trace.total_records()


def test_full_balance_pipeline(benchmark):
    """End-to-end: trace + assign + rewrite + replay + energy (BT-MZ-32)."""
    from repro.core.balancer import PowerAwareLoadBalancer

    balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
    trace = balancer.trace_app(build_app("BT-MZ-32", iterations=4))
    report = benchmark(lambda: balancer.balance_trace(trace))
    assert report.normalized_energy < 0.7
