"""Shared configuration for the benchmark suite.

Each ``bench_*`` module regenerates one paper table/figure through the
experiment harness, times it with pytest-benchmark, and asserts the
paper's shape claims on the produced rows.  ``pedantic(rounds=1)`` is
used throughout: an experiment is seconds of work and deterministic, so
statistical repetition buys nothing.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunnerConfig, get_experiment

#: Full-fidelity configuration used by every figure benchmark.
BENCH_CONFIG = RunnerConfig(iterations=4)


def regenerate(benchmark, eid: str, config: RunnerConfig | None = None):
    """Run one experiment under the benchmark timer and return its rows."""
    run = get_experiment(eid)
    result = benchmark.pedantic(
        lambda: run(config or BENCH_CONFIG), rounds=1, iterations=1
    )
    assert result.rows
    return result


@pytest.fixture()
def bench_config() -> RunnerConfig:
    return BENCH_CONFIG
