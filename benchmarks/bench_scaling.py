"""§1 claim — imbalance (and savings) grow with cluster size."""

from benchmarks.conftest import regenerate


def test_scaling(benchmark):
    result = regenerate(benchmark, "scaling")
    by_family = {}
    for row in result.rows:
        by_family.setdefault(row["family"], []).append(row)

    growing = 0
    for family, rows in by_family.items():
        rows.sort(key=lambda r: r["nproc"])
        if rows[-1]["load_balance_pct"] < rows[0]["load_balance_pct"]:
            growing += 1
            # more imbalance at scale => more energy saved at scale
            assert (
                rows[-1]["energy_savings_pct"]
                >= rows[0]["energy_savings_pct"] - 2.0
            )
    # most families lose balance as the world grows (WRF is the paper's
    # own counter-example: its Table 3 LB *improves* 32 -> 128)
    assert growing >= 5
