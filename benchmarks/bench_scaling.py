"""§1 claim — imbalance (and savings) grow with cluster size."""

from benchmarks.conftest import regenerate

#: Families whose load balance *degrades* 32 -> 128 ranks, per the
#: paper's Table 3 shape (surface-to-volume and tree effects).
DEGRADING = {"BT-MZ", "CG", "MG", "PEPC", "SPECFEM3D"}

#: Counter-examples whose LB *improves* with scale: WRF is the paper's
#: own (Table 3, 32 -> 128); IS's bucket exchange also evens out.
IMPROVING = {"IS", "WRF"}


def test_scaling(benchmark):
    result = regenerate(benchmark, "scaling")
    by_family = {}
    for row in result.rows:
        by_family.setdefault(row["family"], []).append(row)
    assert set(by_family) == DEGRADING | IMPROVING

    for family, rows in by_family.items():
        rows.sort(key=lambda r: r["nproc"])
        first, last = rows[0], rows[-1]
        if family in DEGRADING:
            assert last["load_balance_pct"] < first["load_balance_pct"], (
                f"{family}: LB should degrade with scale "
                f"({first['load_balance_pct']:.1f} -> "
                f"{last['load_balance_pct']:.1f})"
            )
            # more imbalance at scale => more energy saved at scale
            assert (
                last["energy_savings_pct"]
                >= first["energy_savings_pct"] - 2.0
            ), f"{family}: savings should not shrink as LB degrades"
        else:
            assert last["load_balance_pct"] > first["load_balance_pct"], (
                f"{family}: LB should improve with scale "
                f"({first['load_balance_pct']:.1f} -> "
                f"{last['load_balance_pct']:.1f})"
            )
