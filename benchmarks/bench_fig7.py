"""Figure 7 — impact of the computation/communication activity ratio."""

from benchmarks.conftest import regenerate

RATIOS = (1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0)


def test_fig7(benchmark):
    result = regenerate(benchmark, "fig7")
    rows = {r["application"]: r for r in result.rows}

    # the energy change across ratios depends on the load balance degree
    spread = lambda r: abs(r["energy_ar3_pct"] - r["energy_ar1.5_pct"])
    assert spread(rows["BT-MZ-32"]) > spread(rows["CG-32"])
    assert spread(rows["IS-32"]) > spread(rows["MG-32"])

    # perfectly balanced CG-32 is insensitive
    assert spread(rows["CG-32"]) < 1.0
