#!/usr/bin/env python3
"""Topology and collective-model study: does the network change the story?

The paper evaluates on one Myrinet cluster with an analytic (Dimemas)
communication model.  A fair question for any trace-driven study is how
much the *network model* shapes the conclusions.  This example runs one
application under:

* the flat reference network (the paper's setting),
* a 2-D torus and a fat-tree (hop-distance latency),
* each × {analytic collectives, point-to-point decomposed collectives},

and reports the absolute execution time (which moves) next to the
normalized DVFS results (which barely do — the paper's conclusions are
about *computation* imbalance).

Run:  python examples/topology_study.py [APP]
"""

import argparse
from dataclasses import replace

try:  # running from a source checkout without installation
    import repro  # noqa: F401
except ModuleNotFoundError:
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import MaxAlgorithm, PowerAwareLoadBalancer, build_app, uniform_gear_set
from repro.experiments.report import format_table
from repro.netsim.platform import MYRINET_LIKE
from repro.netsim.simulator import MpiSimulator
from repro.netsim.topology import FatTree, Torus2D, with_topology


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("app", nargs="?", default="SPECFEM3D-96")
    args = parser.parse_args()

    nproc = int(args.app.rsplit("-", 1)[1])
    nodes = max(nproc // MYRINET_LIKE.cpus_per_node, 1)
    topologies = {
        "flat (paper)": None,
        "torus2d": Torus2D(nodes),
        "fat-tree": FatTree(leaf_size=4),
    }

    rows = []
    for net_label, topology in topologies.items():
        for coll_label, decompose in (("analytic", False), ("decomposed", True)):
            platform = replace(MYRINET_LIKE, decompose_collectives=decompose)
            if topology is not None:
                platform = with_topology(platform, topology)
            app = build_app(args.app, platform=platform)
            trace = MpiSimulator(platform=platform).run(
                app.programs(), record_trace=True, meta={"name": app.name}
            ).trace
            balancer = PowerAwareLoadBalancer(
                gear_set=uniform_gear_set(6),
                algorithm=MaxAlgorithm(),
                platform=platform,
            )
            report = balancer.balance_trace(trace)
            rows.append(
                {
                    "network": net_label,
                    "collectives": coll_label,
                    "exec_time_ms": 1000.0 * report.original_time,
                    "energy_pct": 100.0 * report.normalized_energy,
                    "time_pct": 100.0 * report.normalized_time,
                }
            )

    print(format_table(
        ["network", "collectives", "exec_time_ms", "energy_pct", "time_pct"],
        rows,
        title=f"Network-model sensitivity for {args.app} (MAX, 6 gears)",
    ))
    energies = [r["energy_pct"] for r in rows]
    print(
        f"\nabsolute times move with the network; normalized energy stays "
        f"within {max(energies) - min(energies):.2f} points — the paper's "
        "conclusions are computation-imbalance properties."
    )


if __name__ == "__main__":
    main()
