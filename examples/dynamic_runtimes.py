#!/usr/bin/env python3
"""Static vs dynamic DVFS: when is the paper's approach the right tool?

The paper's MAX algorithm sets one frequency per rank for the whole run
— "the static version of Jitter".  This example runs three power
management strategies over three workload regimes:

* static MAX (the paper),
* the Jitter iteration loop (Kappiah et al. SC'05),
* communication-phase scaling (Lim et al. SC'06),

on a stationary imbalanced code, the same code with *drifting*
imbalance (heavy ranks rotate each iteration; enable with the
skeletons' ``drift_step``), and a balanced communication-bound code.
It also prints the regularity diagnosis from
``repro.traces.iterstats`` — the check that tells you which tool fits.

Run:  python examples/dynamic_runtimes.py
"""

try:  # running from a source checkout without installation
    import repro  # noqa: F401
except ModuleNotFoundError:
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import MpiSimulator, PowerAwareLoadBalancer, build_app, uniform_gear_set
from repro.core.dynamic import CommPhaseScalingRuntime, JitterRuntime
from repro.experiments.report import format_table
from repro.traces.iterstats import is_regular, iteration_stats


def trace_for(name, drift_step=0, iterations=6):
    app = build_app(name, iterations=iterations, drift_step=drift_step)
    sim = MpiSimulator()
    return sim.run(
        app.programs(), record_trace=True, meta={"name": app.name}
    ).trace


def main() -> None:
    gear_set = uniform_gear_set(6)
    scenarios = [
        ("stationary imbalanced", trace_for("SPECFEM3D-32")),
        ("drifting imbalanced", trace_for("SPECFEM3D-32", drift_step=3)),
        ("balanced, comm-bound", trace_for("CG-64")),
    ]

    rows = []
    for label, trace in scenarios:
        stats = iteration_stats(trace)
        regular = is_regular(trace)
        static = PowerAwareLoadBalancer(gear_set=gear_set).balance_trace(trace)
        jitter = JitterRuntime(gear_set=gear_set).run(trace)
        comm = CommPhaseScalingRuntime(gear_set=gear_set).run(trace)
        for runtime, energy, time in (
            ("static MAX", static.normalized_energy, static.normalized_time),
            ("Jitter", jitter.normalized_energy, jitter.normalized_time),
            ("comm-scaling", comm.normalized_energy, comm.normalized_time),
        ):
            rows.append(
                {
                    "scenario": label,
                    "regular": regular,
                    "drift": stats.drift,
                    "runtime": runtime,
                    "energy_pct": 100.0 * energy,
                    "time_pct": 100.0 * time,
                }
            )

    print(format_table(
        ["scenario", "regular", "drift", "runtime", "energy_pct", "time_pct"],
        rows,
        title="Static vs dynamic DVFS across workload regimes",
    ))
    print(
        "\nreading: the paper's static MAX is optimal exactly on the "
        "regular, compute-imbalanced regime it targets; drifting load "
        "wants the Jitter loop; communication-bound codes want "
        "comm-phase scaling (the approaches compose)."
    )


if __name__ == "__main__":
    main()
