#!/usr/bin/env python3
"""Bring your own application: trace, inspect, balance, visualise.

Shows the full user workflow on a hand-written rank program — a toy
"pipeline + reduction" code with a deliberately skewed stage cost:

1. write rank programs with the virtual-MPI API (`repro.apps.vmpi`);
2. run them through the simulator, recording a trace;
3. persist/reload the trace (JSON-lines);
4. inspect imbalance (Table-3 metrics) and the ASCII timeline;
5. balance with MAX and AVG and compare.

Run:  python examples/custom_app.py
"""

try:  # running from a source checkout without installation
    import repro  # noqa: F401
except ModuleNotFoundError:
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    AvgAlgorithm,
    MaxAlgorithm,
    MpiSimulator,
    PowerAwareLoadBalancer,
    uniform_gear_set,
)
from repro.apps import vmpi
from repro.experiments.fig9 import avg_discrete_set
from repro.traces.analysis import trace_stats
from repro.traces.jsonio import loads_trace, dumps_trace
from repro.traces.timeline import ascii_timeline

NPROC = 16
ITERATIONS = 5


def rank_program(rank: int):
    """A pipeline: stage cost grows with rank; global reduce each step."""
    stage_cost = 0.004 * (1.0 + 1.5 * rank / (NPROC - 1))
    for it in range(ITERATIONS):
        yield vmpi.marker("iter", iteration=it)
        yield vmpi.compute(stage_cost, phase="stage")
        if rank + 1 < NPROC:                      # hand to the next stage
            yield vmpi.send(rank + 1, nbytes=64 * 1024, tag=it)
        if rank > 0:
            yield vmpi.recv(src=rank - 1, tag=it)
        yield vmpi.allreduce(4 * 1024)            # convergence check


def main() -> None:
    sim = MpiSimulator()

    # 1+2: run and record
    result = sim.run(
        [rank_program(r) for r in range(NPROC)],
        record_trace=True,
        record_intervals=True,
        meta={"name": "pipeline-16"},
    )
    trace = result.trace

    # 3: round-trip through the on-disk format
    trace = loads_trace(dumps_trace(trace))

    # 4: inspect
    stats = trace_stats(trace, result.execution_time)
    print(f"custom app: LB={stats.load_balance:.1%} "
          f"PE={stats.parallel_efficiency:.1%} "
          f"records={stats.total_records}")
    print("\noriginal timeline:")
    print(ascii_timeline(result, width=80))

    # 5: balance
    for algorithm, gear_set in (
        (MaxAlgorithm(), uniform_gear_set(6)),
        (AvgAlgorithm(), avg_discrete_set()),
    ):
        balancer = PowerAwareLoadBalancer(gear_set=gear_set)
        report = balancer.balance_trace(trace, algorithm=algorithm)
        print(f"\n{report.algorithm:>4s} [{report.gear_set}]: "
              f"energy {report.normalized_energy:6.1%}, "
              f"time {report.normalized_time:6.1%}, "
              f"EDP {report.normalized_edp:6.1%}")
        original, modified = balancer.replay_pair(trace, report.assignment)
        print(ascii_timeline(modified, width=80, max_ranks=8))


if __name__ == "__main__":
    main()
