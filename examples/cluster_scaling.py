#!/usr/bin/env python3
"""Cluster-size scaling: imbalance — and savings — grow with scale.

The paper's §1 motivation: prior work (Jitter, Slack) evaluated on
8-node clusters; at 32–128 ranks applications are more imbalanced and
DVFS load balancing saves more.  This example sweeps one family across
world sizes and prints load balance, the MAX-algorithm energy, and the
energy a *perfectly balanced* run would use (the headroom).

Run:  python examples/cluster_scaling.py [FAMILY] [--sizes 32,48,64,96,128]
"""

import argparse

try:  # running from a source checkout without installation
    import repro  # noqa: F401
except ModuleNotFoundError:
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import MaxAlgorithm, PowerAwareLoadBalancer, build_app, uniform_gear_set
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("family", nargs="?", default="SPECFEM3D")
    parser.add_argument("--sizes", default="32,48,64,96,128")
    args = parser.parse_args()
    sizes = [int(s) for s in args.sizes.split(",")]

    rows = []
    for nproc in sizes:
        app = build_app(f"{args.family}-{nproc}")
        balancer = PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(6), algorithm=MaxAlgorithm()
        )
        report = balancer.balance_app(app)
        rows.append(
            {
                "nproc": nproc,
                "load_balance_pct": 100.0 * report.load_balance,
                "parallel_eff_pct": 100.0 * report.parallel_efficiency,
                "energy_pct": 100.0 * report.normalized_energy,
                "savings_pct": report.energy_savings_pct,
                "time_pct": 100.0 * report.normalized_time,
            }
        )

    print(format_table(
        ["nproc", "load_balance_pct", "parallel_eff_pct", "energy_pct",
         "savings_pct", "time_pct"],
        rows,
        title=f"{args.family}: DVFS load balancing vs cluster size "
              "(MAX, uniform 6-gear)",
    ))

    first, last = rows[0], rows[-1]
    print(
        f"\n{args.family} going {first['nproc']}→{last['nproc']} ranks: "
        f"LB {first['load_balance_pct']:.1f}%→{last['load_balance_pct']:.1f}%, "
        f"savings {first['savings_pct']:.1f}%→{last['savings_pct']:.1f}% — "
        "larger clusters leave more slack for DVFS to harvest."
    )


if __name__ == "__main__":
    main()
