#!/usr/bin/env python3
"""Gear-set design study: how many DVFS gears does a CPU need?

The paper's §5.3.1–5.3.2 question, answered for any application: sweeps
uniform sets of 2–15 gears and exponential sets of 3–7 against the two
continuous references, prints the table, and writes a grouped bar chart
(`gear_set_design.svg`).  The paper's conclusion — six gears get within
a whisker of continuous scaling, and exponential spacing helps
well-balanced codes — is directly visible in the output.

Run:  python examples/gear_set_design.py [APP] [--svg out.svg]
"""

import argparse

try:  # running from a source checkout without installation
    import repro  # noqa: F401
except ModuleNotFoundError:
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    MaxAlgorithm,
    PowerAwareLoadBalancer,
    build_app,
    exponential_gear_set,
    limited_continuous_set,
    uniform_gear_set,
    unlimited_continuous_set,
)
from repro.experiments.report import bar_chart_svg, format_table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("app", nargs="?", default="SPECFEM3D-96")
    parser.add_argument("--svg", default="gear_set_design.svg")
    args = parser.parse_args()

    app = build_app(args.app)
    trace = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).trace_app(app)

    gear_sets = [unlimited_continuous_set(), limited_continuous_set()]
    gear_sets += [uniform_gear_set(n) for n in range(2, 16)]
    gear_sets += [exponential_gear_set(n) for n in range(3, 8)]

    rows = []
    for gear_set in gear_sets:
        balancer = PowerAwareLoadBalancer(gear_set=gear_set,
                                          algorithm=MaxAlgorithm())
        report = balancer.balance_trace(trace)
        rows.append(
            {
                "gear_set": gear_set.name,
                "energy_pct": 100.0 * report.normalized_energy,
                "edp_pct": 100.0 * report.normalized_edp,
                "time_pct": 100.0 * report.normalized_time,
            }
        )

    print(format_table(
        ["gear_set", "energy_pct", "edp_pct", "time_pct"], rows,
        title=f"Gear-set design study for {app.name} (MAX, β=0.5)",
    ))

    continuous = rows[1]["energy_pct"]
    six = next(r for r in rows if r["gear_set"] == "uniform-6")
    print(f"\nlimited-continuous energy: {continuous:.1f}%  "
          f"six uniform gears: {six['energy_pct']:.1f}%  "
          f"(gap {six['energy_pct'] - continuous:.1f} points)")

    svg = bar_chart_svg(
        f"Normalized energy per gear set — {app.name}",
        [r["gear_set"] for r in rows],
        {"energy %": [r["energy_pct"] for r in rows],
         "EDP %": [r["edp_pct"] for r in rows]},
    )
    with open(args.svg, "w", encoding="utf-8") as fh:
        fh.write(svg)
    print(f"wrote {args.svg}")


if __name__ == "__main__":
    main()
