#!/usr/bin/env python3
"""Quickstart: save CPU energy on an imbalanced MPI application.

Builds the paper's most imbalanced workload (BT-MZ on 32 ranks),
balances it with both algorithms on the six-gear set of Table 1, and
prints the normalized energy / time / EDP — the numbers every figure in
the paper is made of.

Run:  python examples/quickstart.py
"""

try:  # running from a source checkout without installation
    import repro  # noqa: F401
except ModuleNotFoundError:
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    AvgAlgorithm,
    MaxAlgorithm,
    PowerAwareLoadBalancer,
    build_app,
    uniform_gear_set,
)
from repro.experiments.fig9 import avg_discrete_set


def main() -> None:
    app = build_app("BT-MZ-32")
    print(f"application: {app.name}  (target LB {app.target_lb:.1%}, "
          f"target PE {app.target_pe:.1%})")

    # --- MAX: slow the under-loaded ranks down to the critical path ----
    balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
    report = balancer.balance_app(app, algorithm=MaxAlgorithm())
    print("\nMAX on the Table-1 six-gear set:")
    print(f"  energy: {report.normalized_energy:6.1%} of original "
          f"({report.energy_savings_pct:.1f}% saved)")
    print(f"  time:   {report.normalized_time:6.1%}")
    print(f"  EDP:    {report.normalized_edp:6.1%}")

    per_rank = sorted(set(g.frequency for g in report.assignment.gears))
    print(f"  gears used: {per_rank} GHz")

    # --- AVG: also over-clock the most loaded ranks --------------------
    balancer = PowerAwareLoadBalancer(gear_set=avg_discrete_set())
    report = balancer.balance_app(app, algorithm=AvgAlgorithm())
    print("\nAVG on the six-gear set + (2.6 GHz, 1.6 V):")
    print(f"  energy: {report.normalized_energy:6.1%}")
    print(f"  time:   {report.normalized_time:6.1%}  "
          f"(execution got *faster*)")
    print(f"  EDP:    {report.normalized_edp:6.1%}")
    print(f"  CPUs over-clocked: {report.overclocked_pct:.1f}%")


if __name__ == "__main__":
    main()
