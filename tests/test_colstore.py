"""Binary columnar trace store: round-trips, stitching, out-of-core.

The store is only allowed to exist because it is indistinguishable from
the in-memory columnar representation: the same columns come back (both
``mmap=False`` and ``mmap=True``), the same records materialise, the
same compile tape and balance reports fall out, and the shard-stitched
file is *byte-identical* to the sequential save — so neither the
storage backend nor the worker count can ever change results.
"""

import hashlib
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app
from repro.traces.colstore import (
    STORE_EXTENSION,
    STORE_MAGIC,
    StoreError,
    describe_store,
    is_store_file,
    stitch_stores,
)
from repro.traces.columnar import ColumnarTrace, ColumnarTraceBuilder

from tests.test_columnar import NPROC, record_trace, stream_records

COLUMNS = (
    "offsets", "kind", "duration", "beta", "peer", "tag",
    "size", "req", "aux", "label", "collop", "reqpool",
)


def assert_traces_equal(a: ColumnarTrace, b: ColumnarTrace) -> None:
    assert a.nproc == b.nproc
    assert a.meta == b.meta
    assert a.strings == b.strings
    for name in COLUMNS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right, equal_nan=(left.dtype.kind == "f")), name


def sha(path) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


@pytest.fixture
def app_trace():
    return build_app("CG-32", iterations=2).columnar_trace()


class TestRoundTrip:
    def test_save_open_in_memory(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        reopened = ColumnarTrace.open(path)
        assert not reopened.is_mapped
        assert_traces_equal(app_trace, reopened)
        # non-mmap columns are private copies: writable, detached from disk
        assert reopened.kind.flags.writeable

    def test_save_open_mmap(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        mapped = ColumnarTrace.open(path, mmap=True)
        assert mapped.is_mapped
        assert_traces_equal(app_trace, mapped)
        # mapped columns must be read-only: a write would hit the file
        assert not mapped.kind.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            mapped.kind[0] = 0
        mapped.release_pages()  # advisory; must be a safe no-op to call
        assert_traces_equal(app_trace, mapped)
        mapped.detach_mapping()
        assert not mapped.is_mapped

    def test_records_materialise_identically(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        mapped = ColumnarTrace.open(path, mmap=True)
        for rank in range(0, app_trace.nproc, 7):
            assert mapped.records_of(rank) == app_trace.records_of(rank)

    def test_save_is_deterministic(self, tmp_path, app_trace):
        p1, p2 = tmp_path / "a.rpcs", tmp_path / "b.rpcs"
        app_trace.save(p1)
        app_trace.save(p2)
        assert sha(p1) == sha(p2)

    @settings(max_examples=40, deadline=None)
    @given(streams=st.lists(stream_records(), min_size=NPROC, max_size=NPROC))
    def test_fuzz_round_trip_all_nine_kinds(self, tmp_path_factory, streams):
        """save -> open(mmap=True) -> to_records identity, fuzzed over
        all nine record kinds (wildcards, β overrides, unicode labels,
        ragged waitall pools)."""
        trace = ColumnarTrace.from_trace(record_trace(streams))
        path = tmp_path_factory.mktemp("fuzz") / f"t{STORE_EXTENSION}"
        trace.save(path)
        mapped = ColumnarTrace.open(path, mmap=True)
        assert_traces_equal(trace, mapped)
        assert mapped.to_trace().streams == record_trace(streams).streams
        mapped.detach_mapping()


class TestEdgeCases:
    def test_empty_world(self, tmp_path):
        trace = ColumnarTraceBuilder(8).build(meta={"name": "empty"})
        path = tmp_path / f"e{STORE_EXTENSION}"
        trace.save(path)
        for mmap_flag in (False, True):
            reopened = ColumnarTrace.open(path, mmap=mmap_flag)
            assert reopened.n_events == 0
            assert_traces_equal(trace, reopened)

    def test_zero_event_ranks(self, tmp_path):
        builder = ColumnarTraceBuilder(6)
        builder.compute(2, 1.0)
        builder.marker(4, "only-here", iteration=3)
        trace = builder.build(meta={"name": "sparse"})
        path = tmp_path / f"s{STORE_EXTENSION}"
        trace.save(path)
        reopened = ColumnarTrace.open(path, mmap=True)
        assert_traces_equal(trace, reopened)
        assert len(reopened[0]) == 0 and len(reopened[5]) == 0

    def test_unicode_labels(self, tmp_path):
        builder = ColumnarTraceBuilder(2)
        builder.compute(0, 1.0, phase="相位-α")
        builder.marker(1, "итерация", iteration=0)
        trace = builder.build(meta={"name": "ユニコード"})
        path = tmp_path / f"u{STORE_EXTENSION}"
        trace.save(path)
        reopened = ColumnarTrace.open(path, mmap=True)
        assert_traces_equal(trace, reopened)
        assert "相位-α" in reopened.strings


def _boundary_builder(nproc, lo, hi):
    """Ragged waitall pools (0–3 requests) around every rank; emitted
    for ranks [lo, hi) only, full-world offsets."""
    builder = ColumnarTraceBuilder(nproc)
    for rank in range(lo, hi):
        for k in range(rank % 4):
            builder.isend(rank, dst=(rank + 1) % nproc, nbytes=64, request=k)
        builder.waitall(rank, list(range(rank % 4)))
        builder.compute(rank, float(rank), phase=f"phase-{rank % 3}")
    return builder


class TestStitch:
    def test_stitched_equals_sequential(self, tmp_path):
        """The cornerstone: disjoint rank-range shards stitch to the
        exact bytes of the sequential save — ragged waitall reqpools
        crossing every shard boundary."""
        nproc = 10
        seq = tmp_path / f"seq{STORE_EXTENSION}"
        _boundary_builder(nproc, 0, nproc).build(
            meta={"name": "stitch"}
        ).save(seq)
        shard_paths = []
        for i, (lo, hi) in enumerate([(0, 3), (3, 4), (4, 10)]):
            p = tmp_path / f"shard-{i}{STORE_EXTENSION}"
            _boundary_builder(nproc, lo, hi).build().save(p)
            shard_paths.append(p)
        out = tmp_path / f"stitched{STORE_EXTENSION}"
        stitch_stores(shard_paths, out, meta={"name": "stitch"})
        assert sha(out) == sha(seq)

    def test_stitch_rejects_overlapping_shards(self, tmp_path):
        a = tmp_path / f"a{STORE_EXTENSION}"
        b = tmp_path / f"b{STORE_EXTENSION}"
        _boundary_builder(4, 0, 2).build().save(a)
        _boundary_builder(4, 1, 4).build().save(b)
        with pytest.raises(StoreError):
            stitch_stores([a, b], tmp_path / "out.rpcs", meta={})

    def test_sharded_generation_byte_identical(self, tmp_path):
        """columnar_trace(jobs=N) can never change the file bytes."""
        app = build_app("CG-32", iterations=2)
        seq = tmp_path / f"seq{STORE_EXTENSION}"
        app.columnar_trace().save(seq)
        par = tmp_path / f"par{STORE_EXTENSION}"
        trace = app.columnar_trace(jobs=4, out=str(par))
        assert trace.is_mapped
        assert sha(par) == sha(seq)
        trace.detach_mapping()

    def test_sharded_generation_in_memory(self):
        app = build_app("CG-32", iterations=2)
        assert_traces_equal(app.columnar_trace(jobs=3), app.columnar_trace())


class TestIntegrity:
    def test_magic_and_sniffing(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        with open(path, "rb") as fh:
            assert fh.read(len(STORE_MAGIC)) == STORE_MAGIC
        assert is_store_file(path)
        other = tmp_path / "t.jsonl"
        other.write_text("{}\n")
        assert not is_store_file(other)
        assert not is_store_file(tmp_path / "missing.rpcs")

    def test_payload_corruption_detected(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        blob = bytearray(path.read_bytes())
        blob[-20] ^= 0x40  # flip one payload bit
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError, match="digest"):
            ColumnarTrace.open(path)  # non-mmap verifies by default
        with pytest.raises(StoreError, match="digest"):
            ColumnarTrace.open(path, mmap=True, verify=True)

    def test_header_corruption_detected(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        blob = bytearray(path.read_bytes())
        blob[30] ^= 0x01  # inside the header JSON
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            ColumnarTrace.open(path)

    def test_truncated_file_rejected(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        path.write_bytes(path.read_bytes()[:200])
        with pytest.raises(StoreError):
            ColumnarTrace.open(path)

    def test_not_a_store_rejected(self, tmp_path):
        path = tmp_path / f"t{STORE_EXTENSION}"
        path.write_bytes(b"definitely not a store" * 10)
        with pytest.raises(StoreError, match="not a columnar trace store"):
            ColumnarTrace.open(path)

    def test_describe_store(self, tmp_path, app_trace):
        path = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(path)
        info = describe_store(path)
        assert info["nproc"] == app_trace.nproc
        assert info["n_events"] == app_trace.n_events
        assert info["file_nbytes"] == os.path.getsize(path)
        assert {c["name"] for c in info["columns"]} == set(COLUMNS)
        assert info["bytes_per_event"] == pytest.approx(
            info["file_nbytes"] / info["n_events"]
        )


class TestJsonioDispatch:
    def test_write_read_trace_store_path(self, tmp_path, app_trace):
        from repro.traces.jsonio import read_trace, write_trace

        path = tmp_path / f"t{STORE_EXTENSION}"
        write_trace(app_trace, path)
        assert is_store_file(path)
        back = read_trace(path, columnar=True)
        assert_traces_equal(app_trace, back)
        mapped = read_trace(path, columnar=True, mmap=True)
        assert mapped.is_mapped
        assert_traces_equal(app_trace, mapped)
        mapped.detach_mapping()

    def test_record_trace_converts_on_write(self, tmp_path):
        from repro.traces.jsonio import read_trace, write_trace

        trace = build_app("CG-32", iterations=2).columnar_trace().to_trace()
        path = tmp_path / f"t{STORE_EXTENSION}"
        write_trace(trace, path)
        back = read_trace(path)
        assert back.streams == trace.streams

    def test_jsonl_round_trip_through_store(self, tmp_path, app_trace):
        """jsonl -> store -> jsonl is byte-identical."""
        from repro.traces.jsonio import read_trace, write_trace

        j1 = tmp_path / "a.jsonl"
        write_trace(app_trace, j1)
        store = tmp_path / f"t{STORE_EXTENSION}"
        write_trace(read_trace(j1, columnar=True), store)
        j2 = tmp_path / "b.jsonl"
        write_trace(read_trace(store, columnar=True, mmap=True), j2)
        assert j1.read_bytes() == j2.read_bytes()

    def test_prv_round_trip_through_store(self, tmp_path, app_trace):
        """Replay + Paraver export is byte-identical from a mapped store."""
        import io

        from repro.netsim.simulator import MpiSimulator
        from repro.traces.prv import write_prv

        store = tmp_path / f"t{STORE_EXTENSION}"
        app_trace.save(store)
        mapped = ColumnarTrace.open(store, mmap=True)
        direct, through = io.StringIO(), io.StringIO()
        write_prv(
            MpiSimulator().run_trace(app_trace, record_intervals=True), direct
        )
        write_prv(
            MpiSimulator().run_trace(mapped, record_intervals=True), through
        )
        assert direct.getvalue() == through.getvalue()
        mapped.detach_mapping()

    def test_loads_trace_streaming(self, app_trace):
        from repro.traces.jsonio import dumps_trace, loads_trace

        text = dumps_trace(app_trace)
        back = loads_trace(text, columnar=True)
        assert_traces_equal(app_trace, back)
        # no trailing newline must also parse
        back2 = loads_trace(text.rstrip("\n"), columnar=True)
        assert_traces_equal(app_trace, back2)


class TestCompileIdentity:
    def test_mmap_compile_bit_identical(self, tmp_path):
        """compile + price from mapped columns == in-memory columnar ==
        record path, to the last bit / byte."""
        from repro.core.balancer import PowerAwareLoadBalancer
        from repro.core.gears import uniform_gear_set

        app = build_app("BT-MZ-64", iterations=2)
        trace = app.columnar_trace()
        path = tmp_path / f"t{STORE_EXTENSION}"
        trace.save(path)
        mapped = ColumnarTrace.open(path, mmap=True)
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        r_mem = balancer.balance_trace(trace)
        r_map = balancer.balance_trace(mapped)
        assert json.dumps(r_mem.to_json(), sort_keys=True) == json.dumps(
            r_map.to_json(), sort_keys=True
        )
        mapped.detach_mapping()


class TestRunnerStorage:
    def test_storage_excluded_from_cache_identity(self):
        """Like `engine`, `storage` must never enter payloads."""
        from repro.core.gears import uniform_gear_set
        from repro.experiments.runner import Runner, RunnerConfig

        mem = Runner(RunnerConfig(iterations=2))
        mm = Runner(RunnerConfig(iterations=2, storage="mmap"))
        assert mem._trace_payload("CG-32") == mm._trace_payload("CG-32")
        gs = uniform_gear_set(6)
        from repro.core.algorithms import MaxAlgorithm

        assert mem._report_payload(
            "CG-32", gs, MaxAlgorithm(), 0.5
        ) == mm._report_payload("CG-32", gs, MaxAlgorithm(), 0.5)

    def test_mmap_storage_report_byte_identical(self, tmp_path):
        from repro.core.gears import uniform_gear_set
        from repro.experiments.runner import Runner, RunnerConfig

        gs = uniform_gear_set(6)
        mem = Runner(RunnerConfig(iterations=2)).balance("CG-32", gs)
        mm_runner = Runner(
            RunnerConfig(
                iterations=2, storage="mmap", cache_dir=str(tmp_path)
            )
        )
        mm = mm_runner.balance("CG-32", gs)
        assert json.dumps(mem.to_json(), sort_keys=True) == json.dumps(
            mm.to_json(), sort_keys=True
        )
        assert mm_runner.trace("CG-32").is_mapped
        # the store landed under <cache_dir>/traces and is reused
        stores = list((tmp_path / "traces").iterdir())
        assert len(stores) == 1 and is_store_file(stores[0])

    def test_unknown_storage_rejected(self):
        from repro.experiments.runner import Runner, RunnerConfig

        with pytest.raises(ValueError, match="storage"):
            Runner(RunnerConfig(storage="papyrus"))


class TestCliTrace:
    def test_trace_record_shim(self, tmp_path, capsys):
        """`repro trace APP` still works (inserts the record verb)."""
        from repro.cli import main

        out = tmp_path / "t.jsonl"
        assert main(["trace", "CG-32", "-o", str(out), "--iterations", "2"]) == 0
        assert out.exists()

    def test_trace_pack_and_info(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "t.jsonl"
        assert main(
            ["trace", "record", "CG-32", "-o", str(jsonl), "--iterations", "2"]
        ) == 0
        store = tmp_path / f"t{STORE_EXTENSION}"
        assert main(["trace", "pack", str(jsonl), str(store)]) == 0
        assert is_store_file(store)
        back = tmp_path / "back.jsonl"
        assert main(["trace", "pack", str(store), str(back)]) == 0
        assert jsonl.read_bytes() == back.read_bytes()
        capsys.readouterr()
        assert main(["trace", "info", str(store), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["nproc"] == 32
        assert main(["trace", "info", str(store)]) == 0
        assert "bytes/event" in capsys.readouterr().out
