"""Unit tests for the CPU power model (Eq. 1–2 and the calibration)."""

import pytest

from repro.core.gears import LinearVoltageLaw
from repro.core.power import CpuPowerModel, CpuState

TOP = LinearVoltageLaw().gear(2.3)
LOW = LinearVoltageLaw().gear(0.8)


class TestDynamicPower:
    def test_eq1_fv_squared(self):
        pm = CpuPowerModel(static_fraction=0.0)
        assert pm.dynamic_power(TOP) == pytest.approx(2.3 * 1.5**2)

    def test_comm_scaled_by_activity_ratio(self):
        pm = CpuPowerModel(activity_ratio=1.5)
        assert pm.dynamic_power(TOP, CpuState.COMM) == pytest.approx(
            pm.dynamic_power(TOP, CpuState.COMPUTE) / 1.5
        )

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            CpuPowerModel().dynamic_power(TOP, "sleeping")

    def test_lower_gear_draws_much_less(self):
        pm = CpuPowerModel()
        # f*V^2: 0.8*1.0 vs 2.3*2.25 — a factor ~6.5
        ratio = pm.dynamic_power(TOP) / pm.dynamic_power(LOW)
        assert ratio == pytest.approx((2.3 * 1.5**2) / (0.8 * 1.0**2))


class TestStaticCalibration:
    def test_default_static_is_20pct_of_reference(self):
        pm = CpuPowerModel()
        assert pm.static_power(TOP) / pm.reference_power() == pytest.approx(0.20)

    @pytest.mark.parametrize("sf", [0.0, 0.1, 0.3, 0.5, 0.7, 0.9])
    def test_calibration_holds_for_any_fraction(self, sf):
        pm = CpuPowerModel(static_fraction=sf)
        assert pm.static_power(TOP) / pm.reference_power() == pytest.approx(sf)

    def test_eq2_linear_in_voltage(self):
        pm = CpuPowerModel()
        assert pm.static_power(TOP) / pm.static_power(LOW) == pytest.approx(1.5)

    def test_zero_static_fraction_gives_zero_alpha(self):
        assert CpuPowerModel(static_fraction=0.0).alpha == 0.0


class TestValidation:
    def test_activity_ratio_below_one_rejected(self):
        with pytest.raises(ValueError):
            CpuPowerModel(activity_ratio=0.9)

    def test_static_fraction_one_rejected(self):
        with pytest.raises(ValueError):
            CpuPowerModel(static_fraction=1.0)

    def test_with_helpers_return_new_models(self):
        pm = CpuPowerModel()
        pm2 = pm.with_static_fraction(0.5)
        pm3 = pm.with_activity_ratio(2.0)
        assert pm.static_fraction == 0.20
        assert pm2.static_fraction == 0.5
        assert pm3.activity_ratio == 2.0


class TestTotalPower:
    def test_total_is_dynamic_plus_static(self):
        pm = CpuPowerModel()
        assert pm.power(TOP) == pytest.approx(
            pm.dynamic_power(TOP) + pm.static_power(TOP)
        )

    def test_dvfs_saves_power_in_both_states(self):
        pm = CpuPowerModel()
        for state in CpuState.ALL:
            assert pm.power(LOW, state) < pm.power(TOP, state)
