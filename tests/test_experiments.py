"""Experiment-harness tests: every experiment runs and reproduces the
paper's *shape* claims on a reduced configuration.

These are the repository's "paper faithfulness" gate; the benchmark
suite re-runs them at full size.
"""

import pytest

from repro.experiments import EXPERIMENT_IDS
from repro.experiments.runner import ExperimentResult, RunnerConfig, get_experiment

# small but representative configuration: three iterations, a spread of
# imbalance levels, both "needs-low-frequency" apps included
FAST = RunnerConfig(iterations=2)
SUBSET = RunnerConfig(
    iterations=2,
    apps=("BT-MZ-32", "CG-32", "IS-32", "SPECFEM3D-96", "PEPC-128", "WRF-128"),
)


@pytest.fixture(scope="module")
def results():
    """Run every experiment once on the reduced config (cached)."""
    out = {}
    for eid in EXPERIMENT_IDS:
        config = SUBSET if eid not in ("table_gears", "table3", "scaling") else FAST
        out[eid] = get_experiment(eid)(config)
    return out


class TestHarness:
    def test_all_experiments_registered_and_runnable(self, results):
        assert set(results) == set(EXPERIMENT_IDS)
        for eid, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.eid == eid
            assert result.rows, f"{eid} produced no rows"

    def test_ascii_rendering(self, results):
        for result in results.values():
            text = result.to_ascii()
            assert result.title in text

    def test_csv_rendering(self, results, tmp_path):
        results["fig2"].to_csv(tmp_path / "fig2.csv")
        assert (tmp_path / "fig2.csv").read_text().count("\n") > 10

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")

    def test_pivot_helper(self, results):
        pivot = results["fig2"].pivot(
            "application", "gear_set", "normalized_energy_pct"
        )
        assert "BT-MZ-32" in pivot
        assert "uniform-6" in pivot["BT-MZ-32"]


class TestTableGears:
    def test_model_matches_paper_to_two_decimals(self, results):
        for row in results["table_gears"].rows:
            assert row["frequency_ghz"] == pytest.approx(
                row["paper_frequency_ghz"], abs=0.005
            )
            assert row["voltage_v"] == pytest.approx(
                row["paper_voltage_v"], abs=0.005
            )


class TestTable3:
    def test_lb_calibrated(self, results):
        for row in results["table3"].rows:
            assert row["load_balance_pct"] == pytest.approx(
                row["paper_lb_pct"], abs=0.5
            )

    def test_pe_within_tolerance(self, results):
        for row in results["table3"].rows:
            assert row["parallel_efficiency_pct"] == pytest.approx(
                row["paper_pe_pct"], rel=0.08
            )


class TestFig1:
    def test_compute_fraction_jumps(self, results):
        rows = results["fig1"].rows
        before = rows[0]["compute_fraction_pct"]
        after = rows[1]["compute_fraction_pct"]
        assert before < 45.0  # BT-MZ original: mostly waiting
        assert after > 90.0  # after MAX: almost all computing

    def test_timelines_attached(self, results):
        series = results["fig1"].series
        assert "ascii_original" in series and "<svg" in series["svg_after"]


class TestFig2:
    @pytest.fixture()
    def pivot(self, results):
        return results["fig2"].pivot(
            "application", "gear_set", "normalized_energy_pct"
        )

    def test_unlimited_beats_limited_only_for_low_freq_apps(self, pivot):
        # BT-MZ and IS need < 0.8 GHz
        for app in ("BT-MZ-32", "IS-32"):
            assert pivot[app]["unlimited"] < pivot[app]["limited"] - 0.5
        # the rest don't benefit from the unlimited floor
        for app in ("CG-32", "SPECFEM3D-96", "WRF-128"):
            assert pivot[app]["unlimited"] == pytest.approx(
                pivot[app]["limited"], abs=0.5
            )

    def test_six_gears_close_to_continuous(self, pivot):
        """Paper: 6-gear sets achieve results close to continuous."""
        for app, row in pivot.items():
            assert row["uniform-6"] <= row["limited"] + 12.0

    def test_more_gears_never_much_worse(self, pivot):
        for row in pivot.values():
            assert row["uniform-15"] <= row["uniform-2"] + 1.0

    def test_time_increase_small_except_pepc(self, results):
        for row in results["fig2"].rows:
            if row["application"] != "PEPC-128":
                assert row["normalized_time_pct"] < 104.0
            else:
                assert row["normalized_time_pct"] < 125.0

    def test_pepc_can_exceed_two_percent(self, results):
        pepc = [
            r["normalized_time_pct"]
            for r in results["fig2"].rows
            if r["application"] == "PEPC-128"
        ]
        assert max(pepc) > 105.0


class TestFig3:
    def test_energy_increases_with_load_balance(self, results):
        rows = results["fig3"].rows  # sorted by LB
        unlimited = [r["energy_unlimited_pct"] for r in rows]
        # monotone trend (allow small local wiggles)
        assert unlimited[0] < unlimited[-1]
        assert all(b >= a - 8.0 for a, b in zip(unlimited, unlimited[1:]))

    def test_two_gears_only_help_very_imbalanced(self, results):
        for row in results["fig3"].rows:
            if row["load_balance_pct"] < 55.0:
                assert row["energy_uniform-2_pct"] < 90.0
            if row["load_balance_pct"] > 90.0:
                assert row["energy_uniform-2_pct"] == pytest.approx(100.0, abs=1.0)

    def test_most_balanced_app_saves_nothing_with_six_gears(self, results):
        cg = next(r for r in results["fig3"].rows if r["application"] == "CG-32")
        assert cg["energy_uniform-6_pct"] == pytest.approx(100.0, abs=1.0)


class TestFig4:
    def test_exponential_save_earlier_than_uniform(self, results):
        """WRF saves energy with 3 exponential gears (needed 4 uniform)."""
        fig4 = results["fig4"].pivot("application", "gears",
                                     "normalized_energy_pct")
        fig2 = results["fig2"].pivot("application", "gear_set",
                                     "normalized_energy_pct")
        assert fig4["WRF-128"][3] < 99.0
        assert fig2["WRF-128"]["uniform-3"] == pytest.approx(100.0, abs=1.0)

    def test_pepc_time_bounded(self, results):
        """Paper: exponential sets bound PEPC's time increase well below
        MAX's uniform-set worst case (6.5% vs 20% in the paper).  Our
        skeleton's two-phase anti-correlation is stronger than real
        PEPC's, so the absolute penalty is larger, but it must stay
        below the worst uniform-set penalty (deviation recorded in
        EXPERIMENTS.md)."""
        fig2 = results["fig2"].pivot("application", "gear_set",
                                     "normalized_time_pct")
        worst_uniform = max(
            t for gs, t in fig2["PEPC-128"].items() if gs.startswith("uniform")
        )
        for row in results["fig4"].rows:
            if row["application"] == "PEPC-128":
                assert row["normalized_time_pct"] <= worst_uniform + 0.5


class TestFig5:
    def test_energy_monotone_in_beta_where_unclamped(self, results):
        for row in results["fig5"].rows:
            series = [row[f"energy_b{b:g}_pct"]
                      for b in (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)]
            assert all(b >= a - 0.5 for a, b in zip(series, series[1:]))

    def test_clamped_apps_insensitive(self, results):
        """BT-MZ and IS-32 sit at the 0.8 GHz floor: β barely matters."""
        for row in results["fig5"].rows:
            if row["application"] in ("BT-MZ-32", "IS-32"):
                spread = row["energy_b1_pct"] - row["energy_b0.3_pct"]
                assert spread < 6.0


class TestFig6:
    def test_savings_shrink_with_static_fraction(self, results):
        for row in results["fig6"].rows:
            series = [row[f"energy_sf{s}_pct"] for s in range(0, 100, 10)]
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_slope_steeper_for_imbalanced_apps(self, results):
        rows = {r["application"]: r for r in results["fig6"].rows}
        slope = lambda r: r["energy_sf90_pct"] - r["energy_sf0_pct"]
        assert slope(rows["BT-MZ-32"]) > slope(rows["WRF-128"]) - 1e-9
        assert slope(rows["IS-32"]) > slope(rows["CG-32"])


class TestFig7:
    def test_change_depends_on_load_balance(self, results):
        rows = {r["application"]: r for r in results["fig7"].rows}
        spread = lambda r: abs(r["energy_ar3_pct"] - r["energy_ar1.5_pct"])
        assert spread(rows["BT-MZ-32"]) > spread(rows["CG-32"])


class TestFig8:
    def test_energy_reduced_for_all(self, results):
        for row in results["fig8"].rows:
            assert row["energy_oc10_pct"] < 100.0

    def test_time_reduced_for_all_but_pepc(self, results):
        for row in results["fig8"].rows:
            if row["application"] != "PEPC-128":
                assert row["time_oc10_pct"] < 100.5

    def test_reduction_ordered_by_imbalance(self, results):
        rows = {r["application"]: r for r in results["fig8"].rows}
        assert rows["BT-MZ-32"]["energy_oc10_pct"] < rows["CG-32"]["energy_oc10_pct"]


class TestFig9:
    def test_very_imbalanced_apps_overclock_few_cpus(self, results):
        rows = {r["application"]: r for r in results["fig9"].rows}
        for app in ("BT-MZ-32", "IS-32", "PEPC-128"):
            assert rows[app]["overclocked_pct"] < 30.0

    def test_balanced_apps_overclock_many(self, results):
        rows = {r["application"]: r for r in results["fig9"].rows}
        assert rows["SPECFEM3D-96"]["overclocked_pct"] < rows["CG-32"][
            "overclocked_pct"
        ]

    def test_pepc_time_less_than_max(self, results):
        fig9 = {r["application"]: r for r in results["fig9"].rows}
        fig10 = {r["application"]: r for r in results["fig10"].rows}
        assert (
            fig9["PEPC-128"]["normalized_time_pct"]
            <= fig10["PEPC-128"]["time_max_pct"] + 0.5
        )


class TestFig10:
    def test_max_saves_more_energy(self, results):
        for row in results["fig10"].rows:
            assert row["energy_max_pct"] <= row["energy_avg_pct"] + 1.0

    def test_avg_wins_on_time(self, results):
        for row in results["fig10"].rows:
            assert row["time_avg_pct"] <= row["time_max_pct"] + 0.5


class TestScaling:
    def test_imbalance_grows_and_savings_grow(self, results):
        rows = [r for r in results["scaling"].rows if r["family"] == "SPECFEM3D"]
        rows.sort(key=lambda r: r["nproc"])
        lbs = [r["load_balance_pct"] for r in rows]
        savings = [r["energy_savings_pct"] for r in rows]
        assert lbs[0] > lbs[-1]
        assert savings[-1] > savings[0]


class TestAblation:
    def test_rounding_tradeoff(self, results):
        rows = [r for r in results["ablation"].rows if r["study"] == "rounding"]
        by = {}
        for r in rows:
            by.setdefault(r["application"], {})[r["variant"]] = r
        for app, variants in by.items():
            up = variants["round-up (paper)"]
            nearest = variants["round-nearest"]
            # nearest saves at least as much energy but risks time
            assert nearest["normalized_energy_pct"] <= (
                up["normalized_energy_pct"] + 0.5
            )
            assert up["normalized_time_pct"] <= nearest["normalized_time_pct"] + 0.5

    def test_per_phase_oracle_removes_pepc_penalty(self, results):
        rows = {r["variant"]: r for r in results["ablation"].rows
                if r["study"] == "per-phase"}
        single = rows["single setting (paper MAX)"]
        oracle = rows["per-phase oracle (future work)"]
        assert oracle["normalized_time_pct"] < single["normalized_time_pct"] - 2.0
        assert oracle["normalized_energy_pct"] < single["normalized_energy_pct"]
