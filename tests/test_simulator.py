"""Integration-grade unit tests for the MPI replay simulator."""

import pytest

from repro.core.timemodel import BetaTimeModel
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.simx.errors import DeadlockError, ProcessFailure, SimulationError
from repro.traces.records import ANY_SOURCE, ANY_TAG
from repro.apps import vmpi

# A platform where arithmetic is easy: 1 B/ns bandwidth, no latency,
# no overheads, eager below 1 KiB.
EASY = PlatformConfig(
    latency=0.0,
    bandwidth=1e9,
    eager_threshold=1024,
    send_overhead=0.0,
    recv_overhead=0.0,
    cpus_per_node=1,
    intra_node_speedup=1.0,
)


def run(programs, platform=EASY, **kwargs):
    return MpiSimulator(platform=platform).run(programs, **kwargs)


class TestComputeOnly:
    def test_single_rank_timing(self):
        result = run([[vmpi.compute(1.5), vmpi.compute(0.5)]])
        assert result.execution_time == pytest.approx(2.0)
        assert result.compute_times[0] == pytest.approx(2.0)
        assert result.comm_times[0] == 0.0

    def test_independent_ranks_run_in_parallel(self):
        result = run([[vmpi.compute(1.0)], [vmpi.compute(3.0)]])
        assert result.execution_time == pytest.approx(3.0)
        assert result.end_times.tolist() == pytest.approx([1.0, 3.0])

    def test_zero_duration_burst_free(self):
        result = run([[vmpi.compute(0.0)]])
        assert result.execution_time == 0.0

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            run([])


class TestEagerPointToPoint:
    def test_sender_does_not_block(self):
        result = run(
            [
                [vmpi.send(1, 100), vmpi.compute(1.0)],
                [vmpi.compute(2.0), vmpi.recv(0)],
            ]
        )
        # sender finishes its compute at t=1 regardless of the receiver
        assert result.end_times[0] == pytest.approx(1.0)

    def test_receiver_waits_for_arrival(self):
        platform = PlatformConfig(
            latency=0.5, bandwidth=1e9, eager_threshold=1024,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = run(
            [[vmpi.send(1, 0)], [vmpi.recv(0)]],
            platform=platform,
        )
        # message sent at t=0, arrives at t=0.5
        assert result.end_times[1] == pytest.approx(0.5)

    def test_early_receiver_blocks_until_send(self):
        result = run(
            [
                [vmpi.compute(2.0), vmpi.send(1, 100)],
                [vmpi.recv(0)],
            ]
        )
        assert result.end_times[1] == pytest.approx(2.0)
        assert result.comm_times[1] == pytest.approx(2.0)

    def test_wire_time_from_bandwidth(self):
        platform = PlatformConfig(
            latency=0.0, bandwidth=100.0, eager_threshold=1024,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = run([[vmpi.send(1, 500)], [vmpi.recv(0)]], platform=platform)
        assert result.end_times[1] == pytest.approx(5.0)

    def test_wildcard_recv(self):
        result = run(
            [
                [vmpi.compute(1.0), vmpi.send(2, 10, tag=7)],
                [vmpi.compute(0.5), vmpi.send(2, 10, tag=8)],
                [vmpi.recv(ANY_SOURCE, ANY_TAG), vmpi.recv(ANY_SOURCE, ANY_TAG)],
            ]
        )
        assert result.end_times[2] == pytest.approx(1.0)

    def test_tag_selective_recv(self):
        result = run(
            [
                [vmpi.send(1, 10, tag=1), vmpi.compute(1.0), vmpi.send(1, 10, tag=2)],
                [vmpi.recv(0, tag=2), vmpi.recv(0, tag=1)],
            ]
        )
        # the tag-2 message only exists at t=1
        assert result.end_times[1] == pytest.approx(1.0)


class TestRendezvous:
    def test_sender_blocks_until_receiver_posts(self):
        big = EASY.eager_threshold + 1
        result = run(
            [
                [vmpi.send(1, big)],
                [vmpi.compute(3.0), vmpi.recv(0)],
            ]
        )
        # transfer can only start at t=3 when the recv posts
        assert result.end_times[0] == pytest.approx(3.0 + big / 1e9)
        assert result.comm_times[0] == pytest.approx(3.0 + big / 1e9)

    def test_recv_first_transfer_starts_at_send(self):
        big = EASY.eager_threshold + 1
        result = run(
            [
                [vmpi.compute(2.0), vmpi.send(1, big)],
                [vmpi.recv(0)],
            ]
        )
        assert result.end_times[1] == pytest.approx(2.0 + big / 1e9)

    def test_symmetric_exchange_pattern_no_deadlock(self):
        big = 256 * 1024
        programs = [
            list(vmpi.exchange(0, [1], big)),
            list(vmpi.exchange(1, [0], big)),
        ]
        result = run(programs)
        assert result.execution_time > 0.0

    def test_blocking_ring_of_sends_would_deadlock(self):
        """Head-to-head blocking rendezvous sends: a real MPI deadlock,
        and the simulator must say so rather than hang."""
        big = EASY.eager_threshold + 1
        programs = [
            [vmpi.send(1, big), vmpi.recv(1)],
            [vmpi.send(0, big), vmpi.recv(0)],
        ]
        with pytest.raises(DeadlockError):
            run(programs)


class TestNonBlocking:
    def test_isend_irecv_waitall(self):
        result = run(
            [
                [vmpi.isend(1, 10, request=0), vmpi.compute(1.0), vmpi.wait(0)],
                [vmpi.irecv(0, request=0), vmpi.compute(2.0), vmpi.wait(0)],
            ]
        )
        assert result.execution_time == pytest.approx(2.0)

    def test_irecv_overlaps_compute(self):
        """Communication hidden behind computation costs nothing extra."""
        result = run(
            [
                [vmpi.compute(1.0), vmpi.send(1, 100)],
                [vmpi.irecv(0, request=1), vmpi.compute(5.0), vmpi.wait(1)],
            ]
        )
        assert result.end_times[1] == pytest.approx(5.0)
        assert result.comm_times[1] == pytest.approx(0.0)

    def test_wait_on_unknown_request_fails(self):
        with pytest.raises((ProcessFailure, SimulationError)):
            run([[vmpi.wait(7)]])

    def test_finishing_with_outstanding_request_fails(self):
        with pytest.raises((ProcessFailure, SimulationError)):
            run(
                [
                    [vmpi.isend(1, 10, request=0)],
                    [vmpi.recv(0)],
                ]
            )

    def test_request_id_reuse_after_wait(self):
        result = run(
            [
                [
                    vmpi.isend(1, 10, request=0),
                    vmpi.wait(0),
                    vmpi.isend(1, 10, request=0),
                    vmpi.wait(0),
                ],
                [vmpi.recv(0), vmpi.recv(0)],
            ]
        )
        assert result.events > 0


class TestCollectives:
    def test_barrier_synchronises(self):
        platform = PlatformConfig(
            latency=0.25, bandwidth=1e9, send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = run(
            [
                [vmpi.compute(1.0), vmpi.barrier()],
                [vmpi.compute(3.0), vmpi.barrier()],
            ],
            platform=platform,
        )
        # all leave at max(entry)=3 plus barrier cost lat*ceil(log2 2)=0.25
        assert result.end_times.tolist() == pytest.approx([3.25, 3.25])

    def test_early_rank_wait_counted_as_comm(self):
        result = run(
            [
                [vmpi.compute(1.0), vmpi.barrier()],
                [vmpi.compute(3.0), vmpi.barrier()],
            ]
        )
        assert result.comm_times[0] == pytest.approx(2.0)
        assert result.comm_times[1] == pytest.approx(0.0)

    def test_allreduce_cost_added(self):
        platform = PlatformConfig(
            latency=0.0, bandwidth=100.0, send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = run(
            [[vmpi.allreduce(100)], [vmpi.allreduce(100)]], platform=platform
        )
        # 2 * (0 + 100/100) * 1 step = 2.0
        assert result.execution_time == pytest.approx(2.0)

    def test_mismatched_op_fails_loudly(self):
        with pytest.raises((ProcessFailure, SimulationError)):
            run([[vmpi.barrier()], [vmpi.allreduce(8)]])

    def test_mismatched_root_fails_loudly(self):
        with pytest.raises((ProcessFailure, SimulationError)):
            run([[vmpi.bcast(8, root=0)], [vmpi.bcast(8, root=1)]])

    def test_missing_participant_deadlocks(self):
        with pytest.raises(DeadlockError):
            run([[vmpi.barrier()], [vmpi.compute(1.0)]])

    def test_max_nbytes_across_ranks_used(self):
        platform = PlatformConfig(
            latency=0.0, bandwidth=100.0, send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = run(
            [[vmpi.allreduce(100)], [vmpi.allreduce(200)]], platform=platform
        )
        assert result.execution_time == pytest.approx(4.0)

    def test_sequence_of_collectives(self):
        result = run(
            [
                [vmpi.barrier(), vmpi.allreduce(8), vmpi.barrier()],
                [vmpi.barrier(), vmpi.allreduce(8), vmpi.barrier()],
            ]
        )
        assert result.events > 0


class TestFrequencyScaling:
    def test_burst_durations_scale_with_beta_model(self):
        sim = MpiSimulator(
            platform=EASY, time_model=BetaTimeModel(fmax=2.3, beta=0.5)
        )
        result = sim.run([[vmpi.compute(1.0)]], frequencies=[1.15])
        assert result.execution_time == pytest.approx(1.5)

    def test_scalar_frequency_broadcasts(self):
        sim = MpiSimulator(platform=EASY)
        result = sim.run(
            [[vmpi.compute(1.0)], [vmpi.compute(1.0)]], frequencies=1.15
        )
        assert result.compute_times.tolist() == pytest.approx([1.5, 1.5])

    def test_per_burst_beta_override(self):
        sim = MpiSimulator(platform=EASY)
        result = sim.run(
            [[vmpi.compute(1.0, beta=1.0), vmpi.compute(1.0, beta=0.0)]],
            frequencies=[1.15],
        )
        # beta=1 doubles; beta=0 unchanged
        assert result.execution_time == pytest.approx(2.0 + 1.0)

    def test_communication_unaffected_by_frequency(self):
        platform = PlatformConfig(
            latency=1.0, bandwidth=1e9, send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        sim = MpiSimulator(platform=platform)
        result = sim.run(
            [[vmpi.send(1, 0)], [vmpi.recv(0)]], frequencies=[0.8, 0.8]
        )
        assert result.end_times[1] == pytest.approx(1.0)

    def test_bad_frequency_shapes_rejected(self):
        sim = MpiSimulator(platform=EASY)
        with pytest.raises(ValueError):
            sim.run([[vmpi.compute(1.0)]], frequencies=[1.0, 2.0])
        with pytest.raises(ValueError):
            sim.run([[vmpi.compute(1.0)]], frequencies=[-1.0])


class TestRecording:
    def test_trace_recording_captures_ops(self):
        ops = [vmpi.compute(1.0), vmpi.allreduce(8), vmpi.marker("iter", 0)]
        result = run(
            [list(ops), [vmpi.compute(0.5), vmpi.allreduce(8), vmpi.marker("iter", 0)]],
            record_trace=True,
        )
        assert result.trace is not None
        assert result.trace[0].records == ops

    def test_intervals_cover_activity(self):
        result = run(
            [
                [vmpi.compute(1.0), vmpi.barrier()],
                [vmpi.compute(2.0), vmpi.barrier()],
            ],
            record_intervals=True,
        )
        ivs = result.intervals[0]
        kinds = [iv.kind for iv in ivs]
        assert kinds == ["compute", "collective"]
        assert ivs[0].duration == pytest.approx(1.0)
        assert ivs[1].duration == pytest.approx(1.0)  # waiting for rank 1

    def test_markers_timestamped(self):
        result = run([[vmpi.compute(1.0), vmpi.marker("mid", 2)]])
        marks = result.markers[0]
        assert len(marks) == 1
        assert marks[0].time == pytest.approx(1.0)
        assert marks[0].iteration == 2

    def test_no_intervals_by_default(self):
        result = run([[vmpi.compute(1.0)]])
        assert result.intervals is None


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def programs():
            return [
                [vmpi.compute(0.3), vmpi.send(1, 10**5), vmpi.allreduce(64)],
                [vmpi.compute(0.7), vmpi.recv(0), vmpi.allreduce(64)],
            ]

        r1 = run(programs())
        r2 = run(programs())
        assert r1.execution_time == r2.execution_time
        assert r1.compute_times.tolist() == r2.compute_times.tolist()
        assert r1.comm_times.tolist() == r2.comm_times.tolist()
        assert r1.events == r2.events


class TestBusContention:
    def test_single_bus_serialises_transfers(self):
        base = PlatformConfig(
            latency=0.0, bandwidth=100.0, eager_threshold=10**6,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        contended = PlatformConfig(
            latency=0.0, bandwidth=100.0, eager_threshold=10**6, buses=1,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        programs = lambda: [
            [vmpi.send(2, 100)],
            [vmpi.send(3, 100)],
            [vmpi.recv(0)],
            [vmpi.recv(1)],
        ]
        free = run(programs(), platform=base)
        busy = run(programs(), platform=contended)
        assert free.execution_time == pytest.approx(1.0)
        assert busy.execution_time == pytest.approx(2.0)

    def test_many_buses_equal_unlimited(self):
        many = PlatformConfig(
            latency=0.0, bandwidth=100.0, eager_threshold=10**6, buses=16,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        programs = lambda: [
            [vmpi.send(2, 100)],
            [vmpi.send(3, 100)],
            [vmpi.recv(0)],
            [vmpi.recv(1)],
        ]
        assert run(programs(), platform=many).execution_time == pytest.approx(1.0)


class TestErrors:
    def test_self_send_rejected(self):
        with pytest.raises((ProcessFailure, SimulationError)):
            run([[vmpi.send(0, 10)]])

    def test_unmatched_recv_deadlocks_with_diagnostics(self):
        with pytest.raises(DeadlockError) as exc:
            run([[vmpi.recv(1)], [vmpi.compute(1.0)]])
        assert "matcher" in str(exc.value)


class TestRunTrace:
    def test_replay_matches_live_run(self, fast_platform):
        def programs():
            return [
                [vmpi.compute(0.4), vmpi.send(1, 2048), vmpi.allreduce(128)],
                [vmpi.compute(0.9), vmpi.recv(0), vmpi.allreduce(128)],
            ]

        sim = MpiSimulator(platform=fast_platform)
        live = sim.run(programs(), record_trace=True)
        replay = sim.run_trace(live.trace)
        assert replay.execution_time == pytest.approx(live.execution_time)
        assert replay.compute_times.tolist() == pytest.approx(
            live.compute_times.tolist()
        )

    def test_replay_carries_trace_meta(self, fast_platform):
        sim = MpiSimulator(platform=fast_platform)
        live = sim.run(
            [[vmpi.compute(0.1)]], record_trace=True, meta={"name": "X"}
        )
        replay = sim.run_trace(live.trace)
        assert replay.meta["name"] == "X"
