"""Unit tests for the experiment Runner's caching semantics."""

import pytest

from repro.core.algorithms import AvgAlgorithm
from repro.core.gears import uniform_gear_set
from repro.core.power import CpuPowerModel
from repro.experiments.runner import Runner, RunnerConfig


@pytest.fixture()
def runner():
    return Runner(RunnerConfig(iterations=2))


class TestTraceCache:
    def test_same_app_returns_same_object(self, runner):
        t1 = runner.trace("CG-16")
        t2 = runner.trace("CG-16")
        assert t1 is t2

    def test_different_apps_different_traces(self, runner):
        assert runner.trace("CG-16") is not runner.trace("MG-16")


class TestReportCache:
    def test_cell_cached_on_all_inputs(self, runner):
        gs = uniform_gear_set(6)
        r1 = runner.balance("CG-16", gs)
        r2 = runner.balance("CG-16", gs)
        assert r1 is r2

    def test_beta_is_part_of_the_key(self, runner):
        gs = uniform_gear_set(6)
        r1 = runner.balance("IS-16", gs, beta=0.3)
        r2 = runner.balance("IS-16", gs, beta=0.9)
        assert r1 is not r2
        assert r1.normalized_energy <= r2.normalized_energy + 1e-9

    def test_algorithm_is_part_of_the_key(self, runner):
        from repro.experiments.fig9 import avg_discrete_set

        r_max = runner.balance("IS-16", uniform_gear_set(6))
        r_avg = runner.balance("IS-16", avg_discrete_set(),
                               algorithm=AvgAlgorithm())
        assert r_max.algorithm == "MAX"
        assert r_avg.algorithm == "AVG"

    def test_gear_set_name_is_part_of_the_key(self, runner):
        r6 = runner.balance("IS-16", uniform_gear_set(6))
        r8 = runner.balance("IS-16", uniform_gear_set(8))
        assert r6.gear_set != r8.gear_set


class TestPowerModelReaccounting:
    def test_custom_model_does_not_pollute_cache(self, runner):
        gs = uniform_gear_set(6)
        heavy_static = runner.balance(
            "IS-16", gs, power_model=CpuPowerModel(static_fraction=0.8)
        )
        default = runner.balance("IS-16", gs)
        assert default.normalized_energy < heavy_static.normalized_energy
        # cached entry stays on the default model
        again = runner.balance("IS-16", gs)
        assert again is default

    def test_reaccounted_report_shares_times(self, runner):
        gs = uniform_gear_set(6)
        default = runner.balance("IS-16", gs)
        custom = runner.balance(
            "IS-16", gs, power_model=CpuPowerModel(activity_ratio=3.0)
        )
        assert custom.new_time == default.new_time
        assert custom.original_time == default.original_time


class TestConfig:
    def test_default_app_list_is_table3(self):
        from repro.apps.registry import TABLE3_INSTANCES

        assert RunnerConfig().app_list() == TABLE3_INSTANCES

    def test_subset_respected(self):
        cfg = RunnerConfig(apps=("CG-16",))
        assert cfg.app_list() == ("CG-16",)
