"""Calibration and structural tests for the application skeletons.

The headline test: every Table 3 instance's *measured* LB matches the
paper exactly (the profiles are calibrated in closed form) and measured
PE lands within a few percent (PE additionally depends on replay
details).
"""

import numpy as np
import pytest

from repro.apps import build_app
from repro.apps.registry import TABLE3, TABLE3_INSTANCES, parse_name
from repro.netsim.simulator import MpiSimulator
from repro.traces.analysis import (
    compute_times,
    compute_times_by_phase,
    load_balance,
    parallel_efficiency,
)
from repro.traces.trace import Trace


def trace_of(app):
    result = MpiSimulator(platform=app.platform).run(
        app.programs(), record_trace=True, meta={"name": app.name}
    )
    return result.trace, result


class TestTable3Calibration:
    @pytest.mark.parametrize("name", TABLE3_INSTANCES)
    def test_lb_matches_paper_closely(self, name):
        app = build_app(name, iterations=2)
        trace, _ = trace_of(app)
        family, nproc = parse_name(name)
        paper_lb = TABLE3[family][nproc][0] / 100.0
        assert load_balance(trace) == pytest.approx(paper_lb, abs=0.005)

    @pytest.mark.parametrize("name", TABLE3_INSTANCES)
    def test_pe_matches_paper_within_tolerance(self, name):
        app = build_app(name, iterations=2)
        trace, result = trace_of(app)
        family, nproc = parse_name(name)
        paper_pe = TABLE3[family][nproc][1] / 100.0
        measured = parallel_efficiency(trace, result.execution_time)
        assert measured == pytest.approx(paper_pe, rel=0.08)


class TestSkeletonStructure:
    @pytest.mark.parametrize("name", ["CG-16", "MG-16", "IS-16", "BT-MZ-16",
                                      "SPECFEM3D-16", "WRF-16", "PEPC-16"])
    def test_traces_are_structurally_valid(self, name):
        app = build_app(name, iterations=2)
        trace = Trace.from_streams(
            [list(p) for p in app.programs()], meta={"name": app.name}
        )
        trace.validate()

    def test_iterations_scale_compute_linearly(self):
        t2, _ = trace_of(build_app("CG-16", iterations=2))
        t4, _ = trace_of(build_app("CG-16", iterations=4))
        assert compute_times(t4).sum() == pytest.approx(
            2.0 * compute_times(t2).sum()
        )

    def test_determinism_across_builds(self):
        a1, _ = trace_of(build_app("WRF-32", iterations=2))
        a2, _ = trace_of(build_app("WRF-32", iterations=2))
        assert compute_times(a1).tolist() == compute_times(a2).tolist()

    def test_weights_max_is_one(self):
        for name in ("CG-16", "IS-16", "BT-MZ-16"):
            app = build_app(name, iterations=1)
            assert app.weights.max() == pytest.approx(1.0)

    def test_describe_fields(self):
        app = build_app("MG-32", iterations=3)
        d = app.describe()
        assert d["name"] == "MG-32"
        assert d["family"] == "MG"
        assert d["iterations"] == 3
        assert d["comm_budget"] >= 0.0

    def test_seed_override_changes_realisation_not_lb(self):
        from repro.traces.analysis import load_balance

        a = build_app("MG-32", iterations=1)
        b = build_app("MG-32", iterations=1, seed=12345)
        assert a.weights.tolist() != b.weights.tolist()
        ta, _ = trace_of(a)
        tb, _ = trace_of(b)
        assert load_balance(ta) == pytest.approx(load_balance(tb), abs=1e-9)

    def test_negative_drift_rejected(self):
        with pytest.raises(ValueError):
            build_app("CG-16", iterations=1, drift_step=-1)

    def test_invalid_constructor_args_rejected(self):
        from repro.apps.cg import CgSkeleton

        with pytest.raises(ValueError):
            CgSkeleton(nproc=0, target_lb=0.9, target_pe=0.8)
        with pytest.raises(ValueError):
            CgSkeleton(nproc=4, target_lb=0.9, target_pe=0.95)  # PE > LB
        with pytest.raises(ValueError):
            CgSkeleton(nproc=4, target_lb=0.9, target_pe=0.8, iterations=0)
        with pytest.raises(ValueError):
            CgSkeleton(nproc=4, target_lb=0.9, target_pe=0.8, base_compute=0.0)


class TestIsCommunication:
    def test_is_dominated_by_alltoall(self):
        """IS's PE of 8% comes from the key redistribution."""
        app = build_app("IS-32", iterations=2)
        trace, result = trace_of(app)
        pe = parallel_efficiency(trace, result.execution_time)
        assert pe < 0.15
        assert result.in_mpi_fraction() > 0.8


class TestPepcTwoPhases:
    def test_phase_imbalances_differ_from_total(self):
        app = build_app("PEPC-128", iterations=2)
        trace, _ = trace_of(app)
        phases = compute_times_by_phase(trace)
        assert set(phases) == {"tree-build", "force"}
        from repro.apps.imbalance import load_balance_of

        lb_tree = load_balance_of(phases["tree-build"])
        lb_force = load_balance_of(phases["force"])
        lb_total = load_balance(trace)
        # each phase is more imbalanced than the total (anti-correlation)
        assert lb_tree < 0.99
        assert lb_force < 0.99
        assert abs(lb_tree - lb_force) > 0.01 or lb_tree < lb_total

    def test_phase_heavy_ranks_differ(self):
        app = build_app("PEPC-128", iterations=1)
        assert int(np.argmax(app.tree_weights)) != int(np.argmax(app.force_weights))

    def test_max_algorithm_stretches_pepc_time(self):
        """The paper's PEPC effect: a single DVFS setting on two phases
        with different imbalance increases execution time."""
        from repro.core.balancer import PowerAwareLoadBalancer
        from repro.core.gears import uniform_gear_set

        app = build_app("PEPC-128", iterations=2)
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        report = balancer.balance_app(app)
        assert 1.02 < report.normalized_time < 1.25


class TestCommBudget:
    def test_budget_formula(self):
        app = build_app("CG-32", iterations=1)
        expected = app.base_compute * (app.target_lb / app.target_pe - 1.0)
        assert app.comm_budget() == pytest.approx(expected)

    def test_sized_collective_fraction_validation(self):
        app = build_app("CG-32", iterations=1)
        with pytest.raises(ValueError):
            app.sized_collective("allreduce", fraction=1.5)

    def test_balanced_app_tiny_budget(self):
        # BT-MZ: PE ~ LB, so almost no communication budget
        app = build_app("BT-MZ-32", iterations=1)
        assert app.comm_budget() < 0.001 * app.base_compute * 10
