"""Unit tests for the LP energy bound and the per-phase oracle."""

import numpy as np
import pytest

from repro.core.algorithms import MaxAlgorithm
from repro.core.baselines import LpBoundAlgorithm, PerPhaseOracleAlgorithm
from repro.core.gears import uniform_gear_set
from repro.core.power import CpuPowerModel, CpuState
from repro.core.timemodel import BetaTimeModel

MODEL = BetaTimeModel(fmax=2.3, beta=0.5)
GEARS = uniform_gear_set(6)

pytest.importorskip("scipy")


class TestLpBound:
    def test_fractions_are_distributions(self):
        sched = LpBoundAlgorithm().schedule([1.0, 2.0, 3.0], GEARS, MODEL)
        assert sched.fractions.shape == (3, 6)
        assert sched.fractions.sum(axis=1) == pytest.approx([1.0, 1.0, 1.0])
        assert (sched.fractions >= -1e-9).all()

    def test_deadline_respected(self):
        sched = LpBoundAlgorithm().schedule([1.0, 2.0, 3.0], GEARS, MODEL)
        assert (sched.compute_times <= sched.target_time + 1e-9).all()

    def test_heaviest_rank_runs_top_gear_at_zero_slack(self):
        sched = LpBoundAlgorithm(slack=0.0).schedule([1.0, 3.0], GEARS, MODEL)
        assert sched.fractions[1, -1] == pytest.approx(1.0)

    def test_bound_beats_any_single_gear_assignment(self):
        """The LP relaxes MAX's single-gear constraint, so its compute
        energy can only be lower or equal."""
        times = [0.7, 1.3, 2.0, 2.9]
        pm = CpuPowerModel()
        sched = LpBoundAlgorithm().schedule(times, GEARS, MODEL, pm)

        assignment = MaxAlgorithm().assign(times, GEARS, MODEL)
        max_energy = sum(
            MODEL.scale(t, g.frequency) * pm.power(g, CpuState.COMPUTE)
            for t, g in zip(times, assignment.gears)
        )
        assert sched.compute_energy <= max_energy + 1e-9

    def test_slack_reduces_energy(self):
        times = [1.0, 2.0, 3.0]
        tight = LpBoundAlgorithm(slack=0.0).schedule(times, GEARS, MODEL)
        loose = LpBoundAlgorithm(slack=0.5).schedule(times, GEARS, MODEL)
        assert loose.compute_energy <= tight.compute_energy + 1e-12

    def test_idle_rank_parks_at_lowest_gear(self):
        sched = LpBoundAlgorithm().schedule([0.0, 2.0], GEARS, MODEL)
        assert sched.fractions[0, 0] == pytest.approx(1.0)
        assert sched.compute_times[0] == 0.0

    def test_continuous_set_rejected(self):
        from repro.core.gears import limited_continuous_set

        with pytest.raises(TypeError):
            LpBoundAlgorithm().schedule([1.0], limited_continuous_set(), MODEL)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            LpBoundAlgorithm(slack=-0.1)

    def test_bad_times_rejected(self):
        with pytest.raises(ValueError):
            LpBoundAlgorithm().schedule([], GEARS, MODEL)
        with pytest.raises(ValueError):
            LpBoundAlgorithm().schedule([0.0, 0.0], GEARS, MODEL)


class TestPerPhaseOracle:
    def test_each_phase_balanced_independently(self):
        phases = {
            "tree": np.array([1.0, 2.0]),
            "force": np.array([2.0, 1.0]),
        }
        result = PerPhaseOracleAlgorithm().assign_phases(phases, GEARS, MODEL)
        assert set(result) == {"tree", "force"}
        # each phase's heavy rank keeps the top frequency
        assert result["tree"].frequencies[1] == pytest.approx(2.3)
        assert result["force"].frequencies[0] == pytest.approx(2.3)

    def test_anti_correlated_phases_get_different_gears(self):
        """The PEPC scenario: a single setting cannot do this."""
        phases = {
            "tree": np.array([1.0, 4.0]),
            "force": np.array([4.0, 1.0]),
        }
        result = PerPhaseOracleAlgorithm().assign_phases(phases, GEARS, MODEL)
        assert result["tree"].frequencies[0] < 2.3
        assert result["force"].frequencies[0] == pytest.approx(2.3)

    def test_empty_phase_skipped(self):
        phases = {"a": np.array([1.0, 2.0]), "empty": np.array([0.0, 0.0])}
        result = PerPhaseOracleAlgorithm().assign_phases(phases, GEARS, MODEL)
        assert "empty" not in result

    def test_no_phases_rejected(self):
        with pytest.raises(ValueError):
            PerPhaseOracleAlgorithm().assign_phases({}, GEARS, MODEL)

    def test_name_includes_base(self):
        assert PerPhaseOracleAlgorithm().name == "per-phase-MAX"
