#!/usr/bin/env python3
"""Regenerate tests/golden_results.json after a *deliberate* model change.

Run, review the diff, and commit the new snapshot together with the
change that motivated it.
"""

import json
import pathlib

from repro.experiments.runner import RunnerConfig, get_experiment

OUT = pathlib.Path(__file__).parent / "golden_results.json"


def main() -> None:
    cfg = RunnerConfig(iterations=3)
    golden = {"config": {"iterations": 3, "beta": 0.5}}

    t3 = get_experiment("table3")(cfg)
    golden["table3"] = {
        r["application"]: [
            round(r["load_balance_pct"], 2),
            round(r["parallel_efficiency_pct"], 2),
        ]
        for r in t3.rows
    }
    f3 = get_experiment("fig3")(cfg)
    golden["fig3_energy_uniform6"] = {
        r["application"]: round(r["energy_uniform-6_pct"], 2) for r in f3.rows
    }
    f9 = get_experiment("fig9")(cfg)
    golden["fig9"] = {
        r["application"]: [
            round(r["normalized_time_pct"], 2),
            round(r["normalized_energy_pct"], 2),
            round(r["overclocked_pct"], 2),
        ]
        for r in f9.rows
    }
    OUT.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
