#!/usr/bin/env python3
"""Regenerate tests/golden_results.json after a *deliberate* model change.

Run, review the diff, and commit the new snapshot together with the
change that motivated it.  ``--check`` regenerates in memory and exits
non-zero on drift instead of rewriting — CI runs this so a model
change can never slip through without its snapshot.
"""

import argparse
import json
import pathlib
import sys

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

from repro.experiments.runner import RunnerConfig, get_experiment

OUT = pathlib.Path(__file__).parent / "golden_results.json"


def regenerate() -> dict:
    cfg = RunnerConfig(iterations=3)
    golden = {"config": {"iterations": 3, "beta": 0.5}}

    t3 = get_experiment("table3")(cfg)
    golden["table3"] = {
        r["application"]: [
            round(r["load_balance_pct"], 2),
            round(r["parallel_efficiency_pct"], 2),
        ]
        for r in t3.rows
    }
    f3 = get_experiment("fig3")(cfg)
    golden["fig3_energy_uniform6"] = {
        r["application"]: round(r["energy_uniform-6_pct"], 2) for r in f3.rows
    }
    f9 = get_experiment("fig9")(cfg)
    golden["fig9"] = {
        r["application"]: [
            round(r["normalized_time_pct"], 2),
            round(r["normalized_energy_pct"], 2),
            round(r["overclocked_pct"], 2),
        ]
        for r in f9.rows
    }
    return golden


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed snapshot; exit 1 on drift",
    )
    args = parser.parse_args()

    golden = regenerate()
    if args.check:
        committed = json.loads(OUT.read_text())
        if committed == golden:
            print(f"{OUT} matches the current models")
            return 0
        print(
            f"{OUT} has drifted from the current models; rerun "
            f"tests/regen_golden.py and commit the diff",
            file=sys.stderr,
        )
        for key in sorted(set(committed) | set(golden)):
            if committed.get(key) != golden.get(key):
                print(f"  drift in {key!r}", file=sys.stderr)
        return 1

    OUT.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
