"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.simx.engine import Engine
from repro.simx.errors import ScheduleError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(3.0, seen.append, "c")
        eng.schedule(1.0, seen.append, "a")
        eng.schedule(2.0, seen.append, "b")
        eng.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        seen = []
        for label in "abcde":
            eng.schedule(1.0, seen.append, label)
        eng.run()
        assert seen == list("abcde")

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        times = []
        eng.schedule(2.5, lambda: times.append(eng.now))
        eng.run()
        assert times == [2.5]
        assert eng.now == 2.5

    def test_nested_scheduling_from_callback(self):
        eng = Engine()
        seen = []

        def first():
            seen.append(("first", eng.now))
            eng.schedule(1.0, lambda: seen.append(("second", eng.now)))

        eng.schedule(1.0, first)
        eng.run()
        assert seen == [("first", 1.0), ("second", 2.0)]

    def test_zero_delay_runs_at_current_time(self):
        eng = Engine()
        seen = []
        eng.schedule(0.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [0.0]

    def test_schedule_at_absolute_time(self):
        eng = Engine()
        seen = []
        eng.schedule_at(5.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ScheduleError):
            eng.schedule(-1.0, lambda: None)

    def test_nan_and_inf_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ScheduleError):
            eng.schedule(math.nan, lambda: None)
        with pytest.raises(ScheduleError):
            eng.schedule(math.inf, lambda: None)

    def test_scheduling_in_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(ScheduleError):
            eng.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        seen = []
        timer = eng.schedule(1.0, seen.append, "x")
        timer.cancel()
        eng.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        timer = eng.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        eng.run()

    def test_pending_ignores_cancelled(self):
        eng = Engine()
        t1 = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2
        t1.cancel()
        assert eng.pending == 1


class TestRun:
    def test_run_until_stops_clock_at_horizon(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, seen.append, "a")
        eng.schedule(10.0, seen.append, "b")
        eng.run(until=5.0)
        assert seen == ["a"]
        assert eng.now == 5.0
        eng.run()
        assert seen == ["a", "b"]

    def test_run_until_advances_clock_when_queue_drains_early(self):
        # Regression: the queue draining before the horizon used to
        # leave ``now`` at the last event time instead of ``until``.
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run(until=5.0)
        assert eng.now == 5.0

    def test_run_until_on_empty_queue_advances_clock(self):
        eng = Engine()
        eng.run(until=3.0)
        assert eng.now == 3.0

    def test_unbounded_run_keeps_clock_at_last_event(self):
        # With an infinite horizon there is nothing to advance *to*:
        # the clock stays at the final event time.
        eng = Engine()
        eng.schedule(2.5, lambda: None)
        eng.run()
        assert eng.now == 2.5

    def test_run_until_never_moves_clock_backwards(self):
        eng = Engine()
        eng.schedule(4.0, lambda: None)
        eng.run()
        assert eng.now == 4.0
        eng.run(until=1.0)
        assert eng.now == 4.0

    def test_max_events_guard_raises(self):
        eng = Engine()

        def loop():
            eng.schedule(1.0, loop)

        eng.schedule(1.0, loop)
        with pytest.raises(RuntimeError, match="max_events"):
            eng.run(max_events=100)

    def test_step_returns_false_when_drained(self):
        eng = Engine()
        assert eng.step() is False
        eng.schedule(1.0, lambda: None)
        assert eng.step() is True
        assert eng.step() is False

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(7):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 7

    def test_empty_run_is_noop(self):
        eng = Engine()
        eng.run()
        assert eng.now == 0.0
