"""Unit tests for Trace / RankStream containers and structural validation."""

import pytest

from repro.traces.records import (
    CollectiveRecord,
    ComputeBurst,
    IrecvRecord,
    IsendRecord,
    RecvRecord,
    SendRecord,
    WaitallRecord,
    WaitRecord,
)
from repro.traces.trace import RankStream, Trace


def two_rank_trace(records0, records1):
    return Trace.from_streams([records0, records1])


class TestRankStream:
    def test_compute_time_sums_bursts(self):
        s = RankStream(0, [ComputeBurst(1.0), SendRecord(1, 10), ComputeBurst(2.5)])
        assert s.compute_time() == pytest.approx(3.5)

    def test_compute_time_by_phase(self):
        s = RankStream(
            0,
            [
                ComputeBurst(1.0, phase="a"),
                ComputeBurst(2.0, phase="b"),
                ComputeBurst(0.5, phase="a"),
            ],
        )
        assert s.compute_time_by_phase() == {"a": 1.5, "b": 2.0}

    def test_bytes_sent_counts_send_and_isend(self):
        s = RankStream(
            0,
            [SendRecord(1, 100), IsendRecord(1, 50, request=0), WaitRecord(0)],
        )
        assert s.bytes_sent() == 150

    def test_count_by_kind(self):
        s = RankStream(0, [ComputeBurst(1.0), ComputeBurst(1.0), SendRecord(1, 1)])
        assert s.count("compute") == 2
        assert s.count("send") == 1
        assert s.count("recv") == 0


class TestTraceBasics:
    def test_nproc_and_len(self):
        t = Trace(4)
        assert t.nproc == 4
        assert len(t) == 4

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Trace(0)

    def test_from_streams_assigns_ranks_positionally(self):
        t = two_rank_trace([ComputeBurst(1.0)], [ComputeBurst(2.0)])
        assert t[0].rank == 0
        assert t[1].compute_time() == 2.0

    def test_name_from_meta(self):
        t = Trace(2, meta={"name": "CG-2"})
        assert t.name == "CG-2"

    def test_total_records(self):
        t = two_rank_trace([ComputeBurst(1.0)] * 3, [ComputeBurst(1.0)] * 2)
        assert t.total_records() == 5


class TestValidate:
    def test_valid_ptp_trace_passes(self):
        t = two_rank_trace(
            [SendRecord(1, 10)],
            [RecvRecord(0)],
        )
        t.validate()

    def test_out_of_range_dst_rejected(self):
        t = two_rank_trace([SendRecord(5, 10)], [])
        with pytest.raises(ValueError, match="out of range"):
            t.validate()

    def test_self_send_rejected(self):
        t = Trace.from_streams([[SendRecord(0, 10)]])
        # dst==rank is only detectable with >=1 rank; build rank0 self-send
        with pytest.raises(ValueError, match="self-send"):
            t.validate()

    def test_dangling_request_rejected(self):
        t = two_rank_trace([IsendRecord(1, 10, request=1)], [RecvRecord(0)])
        with pytest.raises(ValueError, match="never waited"):
            t.validate()

    def test_wait_on_unknown_request_rejected(self):
        t = two_rank_trace([WaitRecord(9)], [])
        with pytest.raises(ValueError, match="unknown"):
            t.validate()

    def test_request_id_reuse_after_wait_allowed(self):
        t = two_rank_trace(
            [
                IsendRecord(1, 10, request=1),
                WaitRecord(1),
                IsendRecord(1, 10, request=1),
                WaitRecord(1),
            ],
            [RecvRecord(0), RecvRecord(0)],
        )
        t.validate()

    def test_request_id_reuse_before_wait_rejected(self):
        t = two_rank_trace(
            [IsendRecord(1, 10, request=1), IsendRecord(1, 10, request=1)],
            [],
        )
        with pytest.raises(ValueError, match="reused"):
            t.validate()

    def test_waitall_covers_requests(self):
        t = two_rank_trace(
            [
                IsendRecord(1, 10, request=1),
                IrecvRecord(1, request=2),
                WaitallRecord((1, 2)),
            ],
            [RecvRecord(0), SendRecord(0, 10)],
        )
        t.validate()

    def test_collective_count_mismatch_rejected(self):
        t = two_rank_trace(
            [CollectiveRecord("barrier")],
            [CollectiveRecord("barrier"), CollectiveRecord("barrier")],
        )
        with pytest.raises(ValueError, match="disagree on collective count"):
            t.validate()

    def test_app_trace_validates(self, small_trace):
        small_trace.validate()
