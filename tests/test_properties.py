"""Property-based tests (hypothesis) for the core models and invariants.

These pin down the algebra the reproduction rests on: the β model and
its inverse, gear-set selection, profile calibration, energy accounting
and the simulator's key conservation laws.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps import vmpi
from repro.apps.imbalance import calibrate, load_balance_of
from repro.core.algorithms import AvgAlgorithm, MaxAlgorithm
from repro.core.energy import EnergyAccountant
from repro.core.gears import (
    LinearVoltageLaw,
    exponential_gear_set,
    limited_continuous_set,
    overclocked,
    uniform_gear_set,
    unlimited_continuous_set,
)
from repro.core.power import CpuPowerModel, CpuState
from repro.core.timemodel import BetaTimeModel, required_frequency, scaled_time, time_ratio
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator

FMAX = 2.3

frequencies = st.floats(0.05, 2.76, allow_nan=False)
betas = st.floats(0.0, 1.0, allow_nan=False)
pos_times = st.floats(1e-6, 1e3, allow_nan=False)
stretches = st.floats(0.51, 20.0, allow_nan=False)  # > 1 - beta_max


class TestTimeModelProperties:
    @given(f=frequencies, beta=betas)
    def test_ratio_at_least_memory_floor(self, f, beta):
        r = time_ratio(f, FMAX, beta)
        assert r >= (1.0 - beta) - 1e-12

    @given(f=frequencies, beta=betas)
    def test_ratio_monotone_decreasing_in_frequency(self, f, beta):
        assume(f < 2.7)
        assert time_ratio(f, FMAX, beta) >= time_ratio(f + 0.05, FMAX, beta) - 1e-12

    @given(t=pos_times, stretch=stretches, beta=st.floats(0.05, 1.0))
    def test_inversion_round_trip(self, t, stretch, beta):
        assume(stretch > 1.0 - beta + 1e-6)
        f = required_frequency(t, t * stretch, FMAX, beta)
        assume(math.isfinite(f) and f > 0)
        assert scaled_time(t, f, FMAX, beta) == pytest.approx(t * stretch, rel=1e-9)

    @given(t=pos_times, beta=betas, f=frequencies)
    def test_scaled_time_nonnegative(self, t, beta, f):
        assert scaled_time(t, f, FMAX, beta) >= 0.0


class TestGearSetProperties:
    @given(f=st.floats(0.0, 3.0), n=st.integers(2, 15))
    def test_uniform_selection_rounds_up(self, f, n):
        sel = uniform_gear_set(n).select(f)
        if sel.attained:
            assert sel.gear.frequency >= min(f, 0.8) - 1e-9
        else:
            assert f > 2.3

    @given(f=st.floats(0.0, 3.0), n=st.integers(2, 10))
    def test_exponential_selection_rounds_up(self, f, n):
        sel = exponential_gear_set(n).select(f)
        if sel.attained and f <= 2.3:
            assert sel.gear.frequency >= f - 1e-9

    @given(f=st.floats(0.01, 2.3))
    def test_continuous_selection_exact_within_range(self, f):
        sel = unlimited_continuous_set().select(f)
        assert sel.attained
        assert sel.gear.frequency == pytest.approx(max(f, 0.01))

    @given(n=st.integers(2, 15))
    def test_voltage_monotone_in_frequency(self, n):
        gears = list(uniform_gear_set(n))
        volts = [g.voltage for g in gears]
        assert volts == sorted(volts)

    @given(f=st.floats(0.8, 2.3), n=st.integers(2, 15))
    def test_finer_sets_select_lower_or_equal_frequency(self, f, n):
        """Doubling gear density can only move the round-up gear down."""
        coarse = uniform_gear_set(n).select(f).gear.frequency
        fine = uniform_gear_set(2 * n - 1).select(f).gear.frequency
        assert fine <= coarse + 1e-9


class TestCalibrationProperties:
    shapes = arrays(
        float,
        st.integers(4, 100),
        elements=st.floats(0.01, 1.0),
    )

    @given(shape=shapes, target=st.floats(0.2, 0.999))
    def test_calibrate_hits_target_or_refuses(self, shape, target):
        assume(shape.max() > shape.min())
        try:
            w = calibrate(shape, target)
        except ValueError:
            return  # refusal is a documented, valid outcome
        assert load_balance_of(w) == pytest.approx(target, abs=1e-9)
        assert w.max() == pytest.approx(1.0)
        assert (w > 0).all()


class TestAlgorithmProperties:
    times_vectors = arrays(
        float, st.integers(2, 64), elements=st.floats(0.01, 10.0)
    )

    @given(times=times_vectors, beta=st.floats(0.1, 1.0))
    def test_max_predicted_times_never_exceed_target(self, times, beta):
        model = BetaTimeModel(fmax=FMAX, beta=beta)
        a = MaxAlgorithm().assign(times, uniform_gear_set(6), model)
        predicted = a.predicted_compute_times(times, model)
        assert (predicted <= a.target_time * (1 + 1e-9)).all()

    @given(times=times_vectors)
    def test_max_continuous_equalises_completion(self, times):
        model = BetaTimeModel(fmax=FMAX, beta=0.5)
        gear_set = unlimited_continuous_set()
        a = MaxAlgorithm().assign(times, gear_set, model)
        predicted = a.predicted_compute_times(times, model)
        target = times.max()
        # nobody finishes late; ranks not clamped at the 10 MHz floor
        # finish exactly together
        assert (predicted <= target * (1 + 1e-9)).all()
        unclamped = a.frequencies > gear_set.fmin * (1 + 1e-9)
        assert predicted[unclamped] == pytest.approx(
            np.full(int(unclamped.sum()), target)
        )

    @given(times=times_vectors)
    def test_avg_target_between_mean_and_max(self, times):
        model = BetaTimeModel(fmax=FMAX, beta=0.5)
        gear_set = overclocked(limited_continuous_set(), 20.0)
        a = AvgAlgorithm().assign(times, gear_set, model)
        assert times.mean() - 1e-9 <= a.target_time <= times.max() + 1e-9

    @given(times=times_vectors)
    def test_avg_never_slower_than_max_target(self, times):
        model = BetaTimeModel(fmax=FMAX, beta=0.5)
        gear_set = overclocked(limited_continuous_set(), 10.0)
        avg = AvgAlgorithm().assign(times, gear_set, model)
        assert avg.target_time <= times.max() + 1e-9


class TestEnergyProperties:
    @given(
        comp=arrays(float, st.integers(1, 32), elements=st.floats(0.0, 5.0)),
        slack=st.floats(0.0, 5.0),
    )
    def test_energy_positive_and_additive(self, comp, slack):
        texec = float(comp.max(initial=0.0) + slack)
        assume(texec > 0)
        gears = [LinearVoltageLaw().gear(2.3)] * len(comp)
        e = EnergyAccountant().run_energy(comp, texec, gears)
        assert e.total >= 0.0
        assert e.total == pytest.approx(e.compute_energy + e.comm_energy)
        assert e.per_rank.sum() == pytest.approx(e.total)

    @given(f=st.floats(0.8, 2.3))
    def test_power_monotone_in_frequency(self, f):
        pm = CpuPowerModel()
        law = LinearVoltageLaw()
        assert pm.power(law.gear(f)) <= pm.power(law.gear(2.3)) + 1e-12

    @given(sf=st.floats(0.0, 0.9), ar=st.floats(1.0, 4.0))
    def test_calibration_invariant(self, sf, ar):
        pm = CpuPowerModel(static_fraction=sf, activity_ratio=ar)
        top = pm.law.gear(2.3)
        assert pm.static_power(top) / pm.power(top, CpuState.COMPUTE) == (
            pytest.approx(sf)
        )


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        durations=st.lists(st.floats(0.0, 2.0), min_size=2, max_size=6),
        latency=st.floats(0.0, 0.01),
    )
    def test_barrier_world_ends_after_slowest(self, durations, latency):
        platform = PlatformConfig(
            latency=latency, bandwidth=1e9, send_overhead=0.0,
            recv_overhead=0.0, cpus_per_node=1, intra_node_speedup=1.0,
        )
        programs = [[vmpi.compute(d), vmpi.barrier()] for d in durations]
        result = MpiSimulator(platform=platform).run(programs)
        assert result.execution_time >= max(durations) - 1e-12
        assert result.compute_times.tolist() == pytest.approx(durations)

    @settings(max_examples=25, deadline=None)
    @given(
        work=st.lists(st.floats(0.01, 2.0), min_size=2, max_size=8),
        beta=st.floats(0.1, 1.0),
    )
    def test_max_balancing_never_lengthens_compute_only_run(self, work, beta):
        """For barrier-synchronised compute, MAX keeps T_exec within the
        round-up guarantee (modulo model exactness) and saves energy."""
        from repro.core.balancer import PowerAwareLoadBalancer

        platform = PlatformConfig(
            latency=0.0, bandwidth=1e9, send_overhead=0.0,
            recv_overhead=0.0, cpus_per_node=1, intra_node_speedup=1.0,
        )
        balancer = PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(6),
            time_model=BetaTimeModel(fmax=FMAX, beta=beta),
            platform=platform,
        )
        sim = MpiSimulator(platform=platform)
        live = sim.run(
            [[vmpi.compute(w), vmpi.barrier()] for w in work], record_trace=True
        )
        report = balancer.balance_trace(live.trace)
        assert report.normalized_time <= 1.0 + 1e-9
        assert report.normalized_energy <= 1.0 + 1e-9
