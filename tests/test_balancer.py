"""Integration tests for the end-to-end balancing pipeline."""

import numpy as np
import pytest

from repro.apps import build_app
from repro.core.algorithms import AvgAlgorithm, MaxAlgorithm, NoDvfsAlgorithm
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import Gear, uniform_gear_set
from repro.core.power import CpuPowerModel


class TestBalanceApp:
    def test_no_dvfs_is_exactly_baseline(self, balancer):
        app = build_app("MG-16", iterations=2)
        report = balancer.balance_app(app, algorithm=NoDvfsAlgorithm())
        assert report.normalized_energy == pytest.approx(1.0)
        assert report.normalized_time == pytest.approx(1.0)
        assert report.normalized_edp == pytest.approx(1.0)

    def test_max_saves_energy_on_imbalanced_app(self, balancer):
        report = balancer.balance_app(build_app("BT-MZ-32", iterations=2))
        assert report.normalized_energy < 0.7
        # MAX never increases time much (no overclocking, round-up rule)
        assert report.normalized_time < 1.05

    def test_report_fields_consistent(self, balancer):
        report = balancer.balance_app(build_app("WRF-16", iterations=2))
        assert report.nproc == 16
        assert report.algorithm == "MAX"
        assert report.gear_set == "uniform-6"
        assert 0.0 < report.load_balance <= 1.0
        assert 0.0 < report.parallel_efficiency <= report.load_balance + 1e-9
        assert report.energy_savings_pct == pytest.approx(
            100.0 * (1.0 - report.normalized_energy)
        )

    def test_row_serialisation(self, balancer):
        report = balancer.balance_app(build_app("CG-8", iterations=2))
        row = report.row()
        assert row["application"] == "CG-8"
        assert set(row) >= {
            "normalized_energy",
            "normalized_time",
            "normalized_edp",
            "overclocked_pct",
        }

    def test_str_is_informative(self, balancer):
        report = balancer.balance_app(build_app("CG-8", iterations=2))
        text = str(report)
        assert "CG-8" in text and "MAX" in text


class TestBalanceTrace:
    def test_balance_trace_equals_balance_app(self, balancer, btmz_trace):
        r1 = balancer.balance_trace(btmz_trace)
        r2 = balancer.balance_trace(btmz_trace)
        assert r1.normalized_energy == pytest.approx(r2.normalized_energy)

    def test_algorithm_override_per_call(self, btmz_trace):
        gear_set = uniform_gear_set(6).with_extra_gear(Gear(2.6, 1.6))
        balancer = PowerAwareLoadBalancer(gear_set=gear_set)
        rmax = balancer.balance_trace(btmz_trace, algorithm=MaxAlgorithm())
        ravg = balancer.balance_trace(btmz_trace, algorithm=AvgAlgorithm())
        assert rmax.algorithm == "MAX"
        assert ravg.algorithm == "AVG"
        assert ravg.new_time < rmax.new_time  # AVG shrinks the critical path

    def test_assignment_matches_trace_computation(self, balancer, btmz_trace):
        report = balancer.balance_trace(btmz_trace)
        from repro.traces.analysis import compute_times

        times = compute_times(btmz_trace)
        # heaviest rank stays at nominal top under MAX
        heavy = int(np.argmax(times))
        assert report.assignment.gears[heavy].frequency == pytest.approx(2.3)


class TestEnergyConsistency:
    def test_original_energy_uses_nominal_gear_everywhere(self, balancer, btmz_trace):
        report = balancer.balance_trace(btmz_trace)
        pm = balancer.power_model
        nominal = pm.law.gear(2.3)
        # reconstruct: compute at compute power + rest at comm power
        comp = report.meta["original_compute_times"]
        texec = report.original_time
        expected = float(
            np.sum(comp) * pm.power(nominal, "compute")
            + np.sum(texec - comp) * pm.power(nominal, "comm")
        )
        assert report.original_energy.total == pytest.approx(expected)

    def test_max_reduces_every_rank_or_keeps(self, balancer, btmz_trace):
        """No rank may consume more than it did originally under MAX."""
        report = balancer.balance_trace(btmz_trace)
        assert report.new_energy.per_rank.sum() <= (
            report.original_energy.per_rank.sum()
        )


class TestReaccount:
    def test_reaccount_matches_direct_computation(self, btmz_trace):
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        base = balancer.balance_trace(btmz_trace)

        pm = CpuPowerModel(static_fraction=0.6)
        re = balancer.reaccount(base, pm)

        direct = PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(6), power_model=pm
        ).balance_trace(btmz_trace)
        assert re.normalized_energy == pytest.approx(direct.normalized_energy)
        assert re.normalized_edp == pytest.approx(direct.normalized_edp)

    def test_reaccount_preserves_times(self, btmz_trace, balancer):
        base = balancer.balance_trace(btmz_trace)
        re = balancer.reaccount(base, CpuPowerModel(activity_ratio=3.0))
        assert re.new_time == base.new_time
        assert re.original_time == base.original_time


class TestReplayPair:
    def test_replay_pair_returns_interval_runs(self, balancer, btmz_trace):
        report = balancer.balance_trace(btmz_trace)
        original, modified = balancer.replay_pair(btmz_trace, report.assignment)
        assert original.intervals is not None
        assert modified.intervals is not None
        assert original.execution_time == pytest.approx(report.original_time)
        assert modified.execution_time == pytest.approx(report.new_time)

    def test_modified_run_has_higher_compute_fraction(self, balancer, btmz_trace):
        """Fig. 1's claim, as an invariant of the MAX pipeline."""
        from repro.traces.timeline import compute_fraction

        report = balancer.balance_trace(btmz_trace)
        original, modified = balancer.replay_pair(btmz_trace, report.assignment)
        assert compute_fraction(modified) > compute_fraction(original)
