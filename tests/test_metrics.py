"""Unit tests for the result metrics."""

import pytest

from repro.core.metrics import edp, normalized, savings_pct


class TestEdp:
    def test_product(self):
        assert edp(3.0, 2.0) == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            edp(-1.0, 2.0)


class TestNormalized:
    def test_ratio(self):
        assert normalized(40.0, 100.0) == pytest.approx(0.4)

    def test_degenerate_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized(1.0, 0.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            normalized(-1.0, 1.0)


class TestSavings:
    def test_sixty_percent_saved(self):
        assert savings_pct(40.0, 100.0) == pytest.approx(60.0)

    def test_regression_is_negative(self):
        assert savings_pct(110.0, 100.0) == pytest.approx(-10.0)
