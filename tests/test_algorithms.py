"""Unit tests for the MAX and AVG frequency-assignment algorithms."""

import numpy as np
import pytest

from repro.core.algorithms import AvgAlgorithm, MaxAlgorithm, NoDvfsAlgorithm
from repro.core.gears import (
    Gear,
    limited_continuous_set,
    overclocked,
    uniform_gear_set,
    unlimited_continuous_set,
)
from repro.core.timemodel import BetaTimeModel

MODEL = BetaTimeModel(fmax=2.3, beta=0.5)


class TestMax:
    def test_heaviest_rank_keeps_top_frequency(self):
        a = MaxAlgorithm().assign([1.0, 2.0, 3.0], limited_continuous_set(), MODEL)
        assert a.frequencies[2] == pytest.approx(2.3)

    def test_target_is_max_time(self):
        a = MaxAlgorithm().assign([1.0, 3.0], limited_continuous_set(), MODEL)
        assert a.target_time == 3.0

    def test_light_ranks_slowed_to_finish_together(self):
        times = [1.0, 2.0, 4.0]
        a = MaxAlgorithm().assign(times, unlimited_continuous_set(), MODEL)
        predicted = a.predicted_compute_times(times, MODEL)
        assert predicted == pytest.approx([4.0, 4.0, 4.0])

    def test_continuous_frequencies_monotone_in_load(self):
        times = np.linspace(0.5, 4.0, 16)
        a = MaxAlgorithm().assign(times, unlimited_continuous_set(), MODEL)
        assert (np.diff(a.frequencies) > -1e-12).all()

    def test_never_overclocks(self):
        a = MaxAlgorithm().assign([1.0, 5.0], unlimited_continuous_set(), MODEL)
        assert not any(a.overclocked)
        assert a.overclocked_fraction == 0.0

    def test_discrete_rounds_up(self):
        # rank needs f for ratio 4/3: f = 2.3/(2*(4/3)-1) = 1.38 -> gear 1.4
        a = MaxAlgorithm().assign([3.0, 4.0], uniform_gear_set(6), MODEL)
        assert a.frequencies[0] == pytest.approx(1.4)

    def test_discrete_rounding_finishes_no_later_than_target(self):
        times = [1.0, 1.7, 2.6, 4.0]
        a = MaxAlgorithm().assign(times, uniform_gear_set(6), MODEL)
        predicted = a.predicted_compute_times(times, MODEL)
        assert (predicted <= a.target_time + 1e-12).all()

    def test_limited_floor_clamps_very_light_ranks(self):
        # stretch 10x needs f < 0.8: the limited set clamps, unlimited not
        lim = MaxAlgorithm().assign([0.4, 4.0], limited_continuous_set(), MODEL)
        unl = MaxAlgorithm().assign([0.4, 4.0], unlimited_continuous_set(), MODEL)
        assert lim.frequencies[0] == pytest.approx(0.8)
        assert unl.frequencies[0] < 0.8

    def test_balanced_input_keeps_everyone_at_top(self):
        a = MaxAlgorithm().assign([2.0, 2.0, 2.0], uniform_gear_set(6), MODEL)
        assert list(a.frequencies) == pytest.approx([2.3] * 3)

    def test_zero_rank_gets_slowest_gear(self):
        a = MaxAlgorithm().assign([0.0, 2.0], uniform_gear_set(6), MODEL)
        assert a.frequencies[0] == pytest.approx(0.8)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            MaxAlgorithm().assign([], uniform_gear_set(6), MODEL)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            MaxAlgorithm().assign([0.0, 0.0], uniform_gear_set(6), MODEL)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            MaxAlgorithm().assign([-1.0, 2.0], uniform_gear_set(6), MODEL)


class TestAvg:
    def test_target_is_mean_when_attainable(self):
        gear_set = overclocked(limited_continuous_set(), 20.0)
        times = [1.9, 2.0, 2.1]  # mean 2.0; the 2.1 rank reaches it at ~2.54 GHz
        a = AvgAlgorithm().assign(times, gear_set, MODEL)
        assert a.target_time == pytest.approx(2.0)

    def test_heavy_ranks_overclocked(self):
        gear_set = overclocked(limited_continuous_set(), 20.0)
        a = AvgAlgorithm().assign([1.9, 2.0, 2.1], gear_set, MODEL)
        assert a.overclocked == (False, False, True)
        assert a.frequencies[2] > 2.3

    def test_all_finish_at_target(self):
        gear_set = overclocked(limited_continuous_set(), 20.0)
        times = [1.9, 2.0, 2.1]
        a = AvgAlgorithm().assign(times, gear_set, MODEL)
        predicted = a.predicted_compute_times(times, MODEL)
        assert predicted == pytest.approx([2.0, 2.0, 2.0])

    def test_target_degrades_to_attainable_floor(self):
        """Very imbalanced input: the mean is unreachable even at +10%."""
        gear_set = overclocked(limited_continuous_set(), 10.0)
        times = [0.2, 0.2, 0.2, 4.0]  # mean 1.15 << what 4.0 can reach
        a = AvgAlgorithm().assign(times, gear_set, MODEL)
        floor = MODEL.scale(4.0, 2.3 * 1.1)
        assert a.target_time == pytest.approx(floor)
        # the heavy rank runs at the ceiling
        assert a.frequencies[3] == pytest.approx(2.3 * 1.1)

    def test_discrete_extra_gear_used(self):
        gear_set = uniform_gear_set(6).with_extra_gear(Gear(2.6, 1.6))
        a = AvgAlgorithm().assign([1.9, 2.0, 2.1], gear_set, MODEL)
        assert a.frequencies[2] == pytest.approx(2.6)
        assert a.overclocked_fraction == pytest.approx(1 / 3)

    def test_execution_faster_than_max(self):
        """AVG's whole point: the critical path shrinks below max time."""
        gear_set = overclocked(limited_continuous_set(), 20.0)
        times = [1.0, 2.0, 3.0]
        a = AvgAlgorithm().assign(times, gear_set, MODEL)
        assert a.target_time < max(times)

    def test_balanced_input_noop(self):
        gear_set = overclocked(limited_continuous_set(), 10.0)
        a = AvgAlgorithm().assign([2.0, 2.0], gear_set, MODEL)
        assert list(a.frequencies) == pytest.approx([2.3, 2.3])
        assert not any(a.overclocked)

    def test_alternative_targets(self):
        gear_set = overclocked(limited_continuous_set(), 20.0)
        times = [1.9, 1.9, 1.9, 2.1]
        mean_a = AvgAlgorithm("mean").assign(times, gear_set, MODEL)
        p90_a = AvgAlgorithm("p90").assign(times, gear_set, MODEL)
        assert p90_a.target_time >= mean_a.target_time

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            AvgAlgorithm("p50")

    def test_name_reflects_target(self):
        assert AvgAlgorithm().name == "AVG"
        assert AvgAlgorithm("median").name == "AVG[median]"


class TestNoDvfs:
    def test_everyone_at_nominal_top(self):
        a = NoDvfsAlgorithm().assign([1.0, 2.0], uniform_gear_set(6), MODEL)
        assert list(a.frequencies) == pytest.approx([2.3, 2.3])
        assert not any(a.overclocked)


class TestAssignment:
    def test_nproc_property(self):
        a = MaxAlgorithm().assign([1.0, 2.0], uniform_gear_set(6), MODEL)
        assert a.nproc == 2

    def test_overclocked_fraction_counts(self):
        gear_set = uniform_gear_set(6).with_extra_gear(Gear(2.6, 1.6))
        a = AvgAlgorithm().assign([1.0, 2.0, 2.0, 2.0], gear_set, MODEL)
        assert 0.0 <= a.overclocked_fraction <= 1.0


class TestAssignmentPersistence:
    def test_dict_round_trip(self):
        a = MaxAlgorithm().assign([1.0, 2.0, 4.0], uniform_gear_set(6), MODEL)
        b = type(a).from_dict(a.to_dict())
        assert b == a

    def test_json_serialisable(self):
        import json

        a = AvgAlgorithm().assign(
            [1.9, 2.0, 2.1], overclocked(limited_continuous_set(), 20.0), MODEL
        )
        restored = type(a).from_dict(json.loads(json.dumps(a.to_dict())))
        assert restored.frequencies.tolist() == a.frequencies.tolist()
        assert restored.overclocked == a.overclocked

    def test_malformed_dict_rejected(self):
        from repro.core.algorithms import FrequencyAssignment

        with pytest.raises(ValueError, match="malformed"):
            FrequencyAssignment.from_dict({"algorithm": "MAX"})
