"""Unit tests for energy accounting."""

import pytest

from repro.core.energy import EnergyAccountant
from repro.core.gears import LinearVoltageLaw, uniform_gear_set
from repro.core.power import CpuPowerModel, CpuState

LAW = LinearVoltageLaw()
TOP = LAW.gear(2.3)
LOW = LAW.gear(0.8)


class TestRunEnergy:
    def test_single_rank_all_compute(self):
        acct = EnergyAccountant()
        e = acct.run_energy([2.0], 2.0, [TOP])
        pm = acct.power_model
        assert e.total == pytest.approx(2.0 * pm.power(TOP, CpuState.COMPUTE))
        assert e.comm_energy == 0.0

    def test_waiting_rank_charged_comm_power(self):
        acct = EnergyAccountant()
        e = acct.run_energy([1.0], 3.0, [TOP])
        pm = acct.power_model
        expected = 1.0 * pm.power(TOP, CpuState.COMPUTE) + 2.0 * pm.power(
            TOP, CpuState.COMM
        )
        assert e.total == pytest.approx(expected)

    def test_per_rank_breakdown_sums_to_total(self):
        acct = EnergyAccountant()
        e = acct.run_energy([1.0, 2.0, 0.5], 2.5, [TOP, LOW, TOP])
        assert e.per_rank.sum() == pytest.approx(e.total)

    def test_static_energy_burns_whole_run(self):
        acct = EnergyAccountant()
        e = acct.run_energy([1.0], 4.0, [TOP])
        assert e.static_energy == pytest.approx(
            4.0 * acct.power_model.static_power(TOP)
        )

    def test_edp(self):
        acct = EnergyAccountant()
        e = acct.run_energy([1.0], 2.0, [TOP])
        assert e.edp() == pytest.approx(e.total * 2.0)

    def test_balancing_slow_rank_saves_energy(self):
        """The paper's core effect in miniature: one idle-ish rank at a
        lower gear uses less energy with unchanged execution time."""
        acct = EnergyAccountant()
        texec = 2.0
        # rank 1 computes 1s at top then waits 1s
        before = acct.run_energy([2.0, 1.0], texec, [TOP, TOP])
        # rank 1 slowed (beta=0.5, f=0.92 gives ratio 2.0 exactly): computes 2s
        slow = LAW.gear(0.92)
        after = acct.run_energy([2.0, 2.0], texec, [TOP, slow])
        assert after.total < before.total

    def test_compute_exceeding_exec_time_rejected(self):
        acct = EnergyAccountant()
        with pytest.raises(ValueError, match="only"):
            acct.run_energy([3.0], 2.0, [TOP])

    def test_gear_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccountant().run_energy([1.0, 1.0], 2.0, [TOP])

    def test_negative_exec_time_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccountant().run_energy([0.0], -1.0, [TOP])

    def test_zero_run_zero_energy(self):
        e = EnergyAccountant().run_energy([0.0], 0.0, [TOP])
        assert e.total == 0.0
        assert e.mean_power == 0.0


class TestModelInteraction:
    def test_higher_static_fraction_shrinks_savings(self):
        """Fig. 6 mechanism: static power dilutes DVFS savings."""
        texec = 2.0

        def normalized_energy(sf):
            acct = EnergyAccountant(CpuPowerModel(static_fraction=sf))
            orig = acct.run_energy([2.0, 1.0], texec, [TOP, TOP])
            new = acct.run_energy([2.0, 2.0], texec, [TOP, LAW.gear(0.92)])
            return new.total / orig.total

        assert normalized_energy(0.2) < normalized_energy(0.7) < 1.0

    def test_gears_from_set_accepted(self):
        gear_set = uniform_gear_set(6)
        gears = [gear_set.select(1.0).gear, gear_set.select(2.3).gear]
        e = EnergyAccountant().run_energy([1.0, 1.0], 1.0, gears)
        assert e.total > 0.0
