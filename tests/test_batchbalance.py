"""The batched balance planner: byte-identity with the scalar path.

The contract under test (see ``repro.core.batchbalance``): for any
candidate list, :meth:`BatchBalancePlanner.plan_trace` emits reports
whose ``to_json()`` payloads are *byte-identical* (via ``json.dumps``
with sorted keys) to running
:meth:`~repro.core.balancer.PowerAwareLoadBalancer.balance_trace` once
per candidate — on supported worlds (chunked compiled pricing) and on
worlds the compiled kernel rejects (per-candidate DES fallback) alike.
The satellites ride along: baseline-replay memoisation, the vectorised
energy accountant, the engine-stat batch counters, and the cache
interop of :meth:`~repro.experiments.runner.Runner.balance_many`.
"""

from __future__ import annotations

import copy
import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app, vmpi
from repro.core.algorithms import AvgAlgorithm, MaxAlgorithm
from repro.core.balancer import PowerAwareLoadBalancer, nominal_replay
from repro.core.batchbalance import (
    DEFAULT_CHUNK_SIZE,
    BatchBalancePlanner,
    SweepCandidate,
)
from repro.core.energy import EnergyAccountant
from repro.core.gears import (
    NOMINAL_FMAX,
    exponential_gear_set,
    limited_continuous_set,
    overclocked,
    uniform_gear_set,
)
from repro.core.gearopt import GearSetOptimizer
from repro.core.timemodel import BetaTimeModel
from repro.experiments.runner import Runner, RunnerConfig
from repro.netsim.enginestats import process_engine_stats, reset_engine_stats
from repro.netsim.platform import MYRINET_LIKE
from repro.netsim.simulator import MpiSimulator

MODEL = BetaTimeModel(fmax=NOMINAL_FMAX)
#: Bus contention is outside the compiled subset: every replay of a
#: trace on this platform goes through the per-candidate DES fallback.
BUSY_PLATFORM = dataclasses.replace(MYRINET_LIKE, buses=2)


def record_trace(programs, platform=MYRINET_LIKE, name="world"):
    result = MpiSimulator(platform, MODEL).run(
        [list(p) for p in programs], record_trace=True, meta={"name": name}
    )
    trace = result.trace
    trace.meta.setdefault("nproc", trace.nproc)
    return trace


def skewed_programs(nproc=4, iters=2, base=0.004, halo_bytes=4096):
    programs = []
    for rank in range(nproc):
        recs = []
        for it in range(iters):
            recs.append(vmpi.compute(base * (1 + rank + it)))
            recs.extend(
                vmpi.halo_exchange_1d(rank, nproc, nbytes=halo_bytes, tag=it)
            )
        programs.append(recs)
    return programs


def report_bytes(report):
    return json.dumps(report.to_json(), sort_keys=True)


def scalar_reports(trace, candidates, platform=MYRINET_LIKE, engine="auto"):
    """The K scalar balances a batch must reproduce byte-for-byte."""
    out = []
    for cand in candidates:
        balancer = PowerAwareLoadBalancer(
            gear_set=cand.gear_set,
            algorithm=cand.algorithm or MaxAlgorithm(),
            time_model=MODEL,
            platform=platform,
            engine=engine,
        )
        out.append(balancer.balance_trace(copy.deepcopy(trace)))
    return out


GEAR_BUILDERS = (
    lambda: uniform_gear_set(3),
    lambda: uniform_gear_set(6),
    lambda: exponential_gear_set(4),
    lambda: limited_continuous_set(),
    lambda: overclocked(limited_continuous_set(), 10.0),
)


@st.composite
def sweep_world(draw):
    nproc = draw(st.integers(min_value=2, max_value=5))
    iters = draw(st.integers(min_value=1, max_value=2))
    halo_bytes = draw(st.sampled_from([512, 40_000, 120_000]))
    base = draw(st.floats(min_value=1e-4, max_value=0.03))
    programs = skewed_programs(nproc, iters, base, halo_bytes)
    candidates = [
        SweepCandidate(
            draw(st.sampled_from(GEAR_BUILDERS))(),
            algorithm=draw(
                st.sampled_from((MaxAlgorithm, AvgAlgorithm))
            )(),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=4)))
    ]
    return programs, candidates


# ---------------------------------------------------------------------------
# byte-identity with the scalar path
# ---------------------------------------------------------------------------
class TestByteIdentity:
    @settings(max_examples=20, deadline=None)
    @given(sweep_world(), st.booleans())
    def test_random_sweeps_match_scalar_reports(self, world, des_world):
        programs, candidates = world
        platform = BUSY_PLATFORM if des_world else MYRINET_LIKE
        trace = record_trace(programs, platform)
        scalar = scalar_reports(
            copy.deepcopy(trace), candidates, platform=platform
        )
        planner = BatchBalancePlanner(
            time_model=MODEL, platform=platform, chunk_size=2
        )
        batched = planner.plan_trace(trace, candidates)
        assert len(batched) == len(candidates)
        for got, want in zip(batched, scalar):
            assert report_bytes(got) == report_bytes(want)

    def test_meta_arrays_match_scalar(self):
        # to_json() drops meta; pin the raw replay arrays separately so
        # reaccount() works identically on batched reports.
        trace = record_trace(skewed_programs())
        candidates = [SweepCandidate(uniform_gear_set(6), AvgAlgorithm())]
        [want] = scalar_reports(copy.deepcopy(trace), candidates)
        [got] = BatchBalancePlanner(time_model=MODEL).plan_trace(
            trace, candidates
        )
        assert np.array_equal(
            got.meta["original_compute_times"],
            want.meta["original_compute_times"],
        )
        assert np.array_equal(
            got.meta["new_compute_times"], want.meta["new_compute_times"]
        )
        assert got.meta["nominal_gear"] == want.meta["nominal_gear"]
        assert got.meta["trace_meta"] == want.meta["trace_meta"]

    def test_plan_app_matches_balance_app(self):
        app = build_app("MG-32", iterations=1)
        gear_sets = [uniform_gear_set(3), uniform_gear_set(6)]
        planner = BatchBalancePlanner(time_model=MODEL)
        batched = planner.plan_app(app, gear_sets)
        for gear_set, got in zip(gear_sets, batched):
            balancer = PowerAwareLoadBalancer(
                gear_set=gear_set, time_model=MODEL
            )
            assert report_bytes(got) == report_bytes(
                balancer.balance_app(build_app("MG-32", iterations=1))
            )

    def test_bare_gear_sets_and_empty_candidates(self):
        trace = record_trace(skewed_programs())
        planner = BatchBalancePlanner(time_model=MODEL)
        assert planner.plan_trace(trace, []) == []
        # bare GearSet entries are wrapped with the planner default (MAX)
        [bare] = planner.plan_trace(trace, [uniform_gear_set(6)])
        [wrapped] = planner.plan_trace(
            trace, [SweepCandidate(uniform_gear_set(6), MaxAlgorithm())]
        )
        assert report_bytes(bare) == report_bytes(wrapped)

    def test_chunk_size_never_changes_bytes(self):
        trace = record_trace(skewed_programs(nproc=5))
        candidates = [
            SweepCandidate(uniform_gear_set(n)) for n in (2, 3, 4, 5, 6)
        ]
        baseline = None
        for chunk_size in (None, 1, 2, DEFAULT_CHUNK_SIZE):
            planner = BatchBalancePlanner(
                time_model=MODEL, chunk_size=chunk_size
            )
            payloads = [
                report_bytes(r)
                for r in planner.plan_trace(trace, candidates)
            ]
            if baseline is None:
                baseline = payloads
            assert payloads == baseline

    def test_explicit_des_engine_matches_auto(self):
        trace = record_trace(skewed_programs())
        candidates = [
            SweepCandidate(uniform_gear_set(6)),
            SweepCandidate(limited_continuous_set(), AvgAlgorithm()),
        ]
        auto = BatchBalancePlanner(time_model=MODEL).plan_trace(
            copy.deepcopy(trace), candidates
        )
        des = BatchBalancePlanner(
            time_model=MODEL, engine="des"
        ).plan_trace(trace, candidates)
        for a, d in zip(auto, des):
            assert report_bytes(a) == report_bytes(d)


# ---------------------------------------------------------------------------
# engine-stat batch counters
# ---------------------------------------------------------------------------
class TestBatchCounters:
    def test_compiled_batch_counts_chunks(self):
        trace = record_trace(skewed_programs())
        planner = BatchBalancePlanner(time_model=MODEL, chunk_size=2)
        reset_engine_stats()
        planner.plan_trace(
            trace, [SweepCandidate(uniform_gear_set(n)) for n in (2, 3, 4, 5, 6)]
        )
        stats = process_engine_stats()
        assert stats["batch_batches"] == 1
        assert stats["batch_candidates"] == 5
        assert stats["batch_chunks"] == 3  # ceil(5 / 2)
        assert stats["batch_fallback_candidates"] == 0
        assert stats["auto_fallbacks"] == 0

    def test_unchunked_batch_is_one_pass(self):
        trace = record_trace(skewed_programs())
        planner = BatchBalancePlanner(time_model=MODEL, chunk_size=None)
        reset_engine_stats()
        planner.plan_trace(
            trace, [SweepCandidate(uniform_gear_set(n)) for n in (3, 6)]
        )
        assert process_engine_stats()["batch_chunks"] == 1

    def test_unsupported_world_falls_back_per_candidate(self):
        trace = record_trace(skewed_programs(), platform=BUSY_PLATFORM)
        planner = BatchBalancePlanner(
            time_model=MODEL, platform=BUSY_PLATFORM
        )
        planner.plan_trace(trace, [uniform_gear_set(6)])  # warm baseline
        reset_engine_stats()
        planner.plan_trace(
            trace, [SweepCandidate(uniform_gear_set(n)) for n in (2, 3, 4)]
        )
        stats = process_engine_stats()
        assert stats["batch_batches"] == 1
        assert stats["batch_candidates"] == 3
        assert stats["batch_chunks"] == 0  # no vectorised pass happened
        assert stats["batch_fallback_candidates"] == 3
        assert stats["auto_fallbacks"] == 1
        assert stats["des_runs"] == 3  # memoised baseline: no 4th replay

    def test_explicit_des_engine_counts_as_fallback_pricing(self):
        trace = record_trace(skewed_programs())
        planner = BatchBalancePlanner(time_model=MODEL, engine="des")
        planner.plan_trace(trace, [uniform_gear_set(6)])  # warm baseline
        reset_engine_stats()
        planner.plan_trace(
            trace, [SweepCandidate(uniform_gear_set(n)) for n in (3, 6)]
        )
        stats = process_engine_stats()
        assert stats["batch_fallback_candidates"] == 2
        assert stats["auto_fallbacks"] == 0

    def test_bad_frequency_matrix_rejected(self):
        trace = record_trace(skewed_programs(nproc=3))
        planner = BatchBalancePlanner(time_model=MODEL)
        with pytest.raises(ValueError, match=r"\(K, nproc\)"):
            planner.simulator.evaluate_assignments(
                trace, np.ones(3)  # 1-D: a forgotten [ ] around one row
            )


# ---------------------------------------------------------------------------
# baseline-replay memoisation
# ---------------------------------------------------------------------------
class TestBaselineMemoisation:
    def test_repeated_balances_replay_baseline_once(self):
        trace = record_trace(skewed_programs())
        reset_engine_stats()
        PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(6), time_model=MODEL, engine="des"
        ).balance_trace(trace)
        assert process_engine_stats()["des_runs"] == 2  # baseline + modified
        # a *different* balancer, same trace: baseline comes from the memo
        PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(3), time_model=MODEL, engine="des"
        ).balance_trace(trace)
        assert process_engine_stats()["des_runs"] == 3

    def test_memo_key_distinguishes_beta(self):
        trace = record_trace(skewed_programs())
        sim_a = MpiSimulator(MYRINET_LIKE, MODEL)
        sim_b = MpiSimulator(
            MYRINET_LIKE, BetaTimeModel(fmax=NOMINAL_FMAX, beta=0.3)
        )
        reset_engine_stats()
        first = nominal_replay(sim_a, trace)
        assert nominal_replay(sim_a, trace) is first
        other = nominal_replay(sim_b, trace)
        assert other is not first
        assert process_engine_stats()["des_runs"] == 2

    def test_memo_key_distinguishes_platform(self):
        trace = record_trace(skewed_programs())
        sim_a = MpiSimulator(MYRINET_LIKE, MODEL)
        sim_b = MpiSimulator(BUSY_PLATFORM, MODEL)
        first = nominal_replay(sim_a, trace)
        assert nominal_replay(sim_b, trace) is not first
        assert nominal_replay(sim_b, trace) is nominal_replay(sim_b, trace)


# ---------------------------------------------------------------------------
# vectorised energy accounting
# ---------------------------------------------------------------------------
class TestRunEnergyMany:
    def _batch(self, seed=7, K=5, nproc=6):
        rng = np.random.default_rng(seed)
        gear_set = uniform_gear_set(4)
        exec_t = rng.uniform(1.0, 2.0, K)
        compute = rng.uniform(0.1, 0.9, (K, nproc)) * exec_t[:, None]
        gears_rows = [
            [gear_set.gears[i] for i in rng.integers(0, len(gear_set), nproc)]
            for _ in range(K)
        ]
        return compute, exec_t, gears_rows

    def test_matches_scalar_run_energy_exactly(self):
        acc = EnergyAccountant()
        compute, exec_t, gears_rows = self._batch()
        many = acc.run_energy_many(compute, exec_t, gears_rows)
        for k, breakdown in enumerate(many):
            one = acc.run_energy(compute[k], float(exec_t[k]), gears_rows[k])
            assert breakdown.compute_energy == one.compute_energy
            assert breakdown.comm_energy == one.comm_energy
            assert breakdown.static_energy == one.static_energy
            assert breakdown.dynamic_energy == one.dynamic_energy
            assert breakdown.execution_time == one.execution_time
            assert np.array_equal(breakdown.per_rank, one.per_rank)

    def test_shape_validation(self):
        acc = EnergyAccountant()
        compute, exec_t, gears_rows = self._batch()
        with pytest.raises(ValueError, match=r"\(K, nproc\)"):
            acc.run_energy_many(compute[0], exec_t, gears_rows)
        with pytest.raises(ValueError, match="does not match"):
            acc.run_energy_many(compute, exec_t[:-1], gears_rows)
        with pytest.raises(ValueError, match="gear rows"):
            acc.run_energy_many(compute, exec_t, gears_rows[:-1])
        with pytest.raises(ValueError, match="run 2: .* gears for"):
            short = list(gears_rows)
            short[2] = short[2][:-1]
            acc.run_energy_many(compute, exec_t, short)

    def test_errors_are_labelled_with_the_run_index(self):
        acc = EnergyAccountant()
        compute, exec_t, gears_rows = self._batch()
        bad_exec = exec_t.copy()
        bad_exec[3] = -1.0
        with pytest.raises(ValueError, match="run 3: execution time"):
            acc.run_energy_many(compute, bad_exec, gears_rows)
        bad_compute = compute.copy()
        bad_compute[1, 4] = exec_t[1] * 2.0
        with pytest.raises(ValueError, match="run 1: rank 4 computes"):
            acc.run_energy_many(bad_compute, exec_t, gears_rows)


# ---------------------------------------------------------------------------
# Runner.balance_many: cache interop with the scalar path
# ---------------------------------------------------------------------------
class TestRunnerBalanceMany:
    CANDIDATES = (
        SweepCandidate(uniform_gear_set(3)),
        SweepCandidate(uniform_gear_set(6), AvgAlgorithm()),
    )

    def test_batched_cells_serve_scalar_calls(self, tmp_path):
        config = RunnerConfig(
            iterations=2, cache_dir=str(tmp_path / "cache")
        )
        runner = Runner(config)
        batched = runner.balance_many("CG-16", list(self.CANDIDATES))
        assert len(batched) == 2
        # the scalar path now finds both cells in the in-memory cache
        assert runner.balance("CG-16", uniform_gear_set(3)) is batched[0]
        assert (
            runner.balance("CG-16", uniform_gear_set(6), AvgAlgorithm())
            is batched[1]
        )
        # a fresh Runner on the same cache dir replans nothing
        fresh = Runner(config)
        reset_engine_stats()
        again = fresh.balance_many("CG-16", list(self.CANDIDATES))
        assert process_engine_stats()["batch_batches"] == 0
        assert [report_bytes(r) for r in again] == [
            report_bytes(r) for r in batched
        ]

    def test_scalar_warm_cells_skip_planning(self):
        runner = Runner(RunnerConfig(iterations=2))
        warm = runner.balance("CG-16", uniform_gear_set(3))
        reset_engine_stats()
        out = runner.balance_many(
            "CG-16", [uniform_gear_set(3), uniform_gear_set(6)]
        )
        stats = process_engine_stats()
        assert out[0] is warm  # served from the scalar call's cache entry
        assert stats["batch_candidates"] == 1  # only the miss was priced

    def test_batched_reports_match_scalar_runner(self):
        batched = Runner(RunnerConfig(iterations=2)).balance_many(
            "CG-16", list(self.CANDIDATES)
        )
        scalar_runner = Runner(RunnerConfig(iterations=2))
        scalar = [
            scalar_runner.balance(
                "CG-16", c.gear_set, c.algorithm or MaxAlgorithm()
            )
            for c in self.CANDIDATES
        ]
        assert [report_bytes(r) for r in batched] == [
            report_bytes(r) for r in scalar
        ]


# ---------------------------------------------------------------------------
# replay-based gear-set scoring
# ---------------------------------------------------------------------------
class TestReplayScores:
    def test_scores_equal_scalar_normalized_energy(self):
        trace = record_trace(skewed_programs())
        optimizer = GearSetOptimizer(model=MODEL)
        gear_sets = [uniform_gear_set(2), uniform_gear_set(6)]
        scores = optimizer.replay_scores([trace], gear_sets)
        assert scores.shape == (2,)
        for gear_set, score in zip(gear_sets, scores):
            report = PowerAwareLoadBalancer(
                gear_set=gear_set, time_model=MODEL
            ).balance_trace(copy.deepcopy(trace))
            assert float(score) == report.normalized_energy
        # more gears can only help (round-up selection gets finer)
        assert scores[1] <= scores[0]

    def test_mean_over_traces(self):
        traces = [
            record_trace(skewed_programs(), name="a"),
            record_trace(skewed_programs(nproc=5, base=0.008), name="b"),
        ]
        optimizer = GearSetOptimizer(model=MODEL)
        [mean_score] = optimizer.replay_scores(traces, [uniform_gear_set(6)])
        singles = [
            float(optimizer.replay_scores([t], [uniform_gear_set(6)])[0])
            for t in traces
        ]
        assert mean_score == pytest.approx(sum(singles) / 2.0)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError, match="at least one trace"):
            GearSetOptimizer().replay_scores([], [uniform_gear_set(6)])
