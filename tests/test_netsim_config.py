"""Unit tests for platform configuration files."""

import io
import json

import pytest

from repro.netsim.config import (
    load_platform,
    platform_from_dict,
    platform_to_dict,
    save_platform,
)
from repro.netsim.platform import MYRINET_LIKE, PlatformConfig
from repro.netsim.topology import Torus2D, with_topology


class TestRoundTrip:
    def test_reference_platform(self, tmp_path):
        path = tmp_path / "platform.json"
        save_platform(MYRINET_LIKE, path)
        assert load_platform(path) == MYRINET_LIKE

    def test_custom_values(self):
        buf = io.StringIO()
        original = PlatformConfig(
            name="fast", latency=1e-6, bandwidth=1e10, buses=4,
            collective_factors={"alltoall": 1.5},
        )
        save_platform(original, buf)
        buf.seek(0)
        loaded = load_platform(buf)
        assert loaded.latency == 1e-6
        assert loaded.buses == 4
        assert loaded.collective_factor("alltoall") == 1.5

    def test_topology_round_trip(self, tmp_path):
        path = tmp_path / "torus.json"
        save_platform(with_topology(MYRINET_LIKE, Torus2D(16)), path)
        loaded = load_platform(path)
        assert loaded.topology.name == "torus2d"
        assert loaded.topology.nodes == 16


class TestFromDict:
    def test_defaults_fill_missing(self):
        p = platform_from_dict({"latency": 5e-6})
        assert p.latency == 5e-6
        assert p.bandwidth == MYRINET_LIKE.bandwidth

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown platform keys"):
            platform_from_dict({"lattency": 1e-6})

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            platform_from_dict({"topology": {"kind": "hypercube"}})

    def test_fattree_spec(self):
        p = platform_from_dict({"topology": {"kind": "fattree", "leaf_size": 4}})
        assert p.topology.leaf_size == 4

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            platform_from_dict({"bandwidth": -1.0})


class TestLoadErrors:
    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            load_platform(io.StringIO("[1, 2, 3]"))

    def test_to_dict_is_json_serialisable(self):
        json.dumps(platform_to_dict(MYRINET_LIKE))
