"""Unit tests for the reproduce-all campaign driver."""

import json

import pytest

from repro.experiments.campaign import reproduce_all
from repro.experiments.runner import RunnerConfig

FAST = RunnerConfig(iterations=2, apps=("BT-MZ-32", "CG-32"))


class TestReproduceAll:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        manifest = reproduce_all(
            out,
            FAST,
            experiments=("table_gears", "fig3", "fig1"),
            echo=lambda *a: None,
        )
        return out, manifest

    def test_manifest_structure(self, campaign):
        out, manifest = campaign
        assert set(manifest["experiments"]) == {"table_gears", "fig3", "fig1"}
        assert manifest["config"]["apps"] == ["BT-MZ-32", "CG-32"]
        for entry in manifest["experiments"].values():
            assert entry["rows"] > 0
            assert entry["seconds"] >= 0.0

    def test_files_written(self, campaign):
        out, manifest = campaign
        for eid, entry in manifest["experiments"].items():
            for fname in entry["files"]:
                assert (out / fname).exists(), fname
        assert (out / "REPORT.md").exists()
        assert json.loads((out / "manifest.json").read_text())

    def test_fig1_gets_timeline_svgs(self, campaign):
        out, manifest = campaign
        files = manifest["experiments"]["fig1"]["files"]
        assert "fig1_original.svg" in files
        assert "fig1_after.svg" in files
        assert (out / "fig1_after.svg").read_text().startswith("<svg")

    def test_report_contains_markdown_tables(self, campaign):
        out, _ = campaign
        report = (out / "REPORT.md").read_text()
        assert "# Reproduction report" in report
        assert "| set |" in report or "| application |" in report

    def test_csv_parsable(self, campaign):
        import csv

        out, _ = campaign
        with open(out / "fig3.csv", newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert {r["application"] for r in rows} == {"BT-MZ-32", "CG-32"}

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown experiment"):
            reproduce_all(
                tmp_path, FAST, experiments=("fig99",), echo=lambda *a: None
            )
