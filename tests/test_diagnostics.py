"""Tests for the cross-layer diagnostics engine (``repro lint``)."""

import dataclasses
import json

import pytest

from repro.apps import build_app
from repro.cli import main
from repro.core.gears import (
    ContinuousGearSet,
    Gear,
    LinearVoltageLaw,
    uniform_gear_set,
)
from repro.diagnostics import (
    Severity,
    all_rules,
    analyze_deadlock,
    apply_baseline,
    exit_code,
    is_selected,
    lint_gear_set,
    lint_models,
    lint_platform,
    lint_trace_subject,
    load_baseline,
    to_sarif,
    write_baseline,
)
from repro.diagnostics.engine import LintConfig, run_domain
from repro.diagnostics.rules_results import ResultsContext
from repro.experiments.fig9 import avg_discrete_set
from repro.netsim.platform import MYRINET_LIKE, PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.traces.jsonio import write_trace
from repro.traces.records import (
    CollectiveRecord,
    ComputeBurst,
    IrecvRecord,
    IsendRecord,
    MarkerRecord,
    RecvRecord,
    SendRecord,
    WaitRecord,
)
from repro.traces.trace import Trace

RENDEZVOUS = PlatformConfig(eager_threshold=100)


def marked(records_per_rank, meta=None):
    return Trace.from_streams(
        [[MarkerRecord("iter", 0), *recs] for recs in records_per_rank],
        meta=meta,
    )


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestRegistry:
    def test_rule_table_is_sane(self):
        rules = all_rules()
        assert len(rules) >= 20
        assert len({r.code for r in rules}) == len(rules)
        for rule in rules:
            assert rule.summary
            assert isinstance(rule.severity, Severity)

    def test_selection_prefixes(self):
        assert is_selected("TR008", select=("TR",))
        assert is_selected("TR008", select=("TR008",))
        assert not is_selected("TR008", select=("GR",))
        assert not is_selected("TR008", ignore=("TR",))
        # ignore wins over select
        assert not is_selected("TR008", select=("TR",), ignore=("TR008",))
        # empty select means everything
        assert is_selected("MD001")

    def test_engine_select_and_ignore(self):
        trace = marked([[ComputeBurst(0.01)], []])  # rank 1 idle -> TR002
        only = lint_trace_subject(
            trace, config=LintConfig(select=("TR002",))
        )
        assert codes(only) == {"TR002"}
        none = lint_trace_subject(trace, config=LintConfig(ignore=("TR",)))
        assert none == []

    def test_per_trace_suppression_via_meta(self):
        trace = marked(
            [[ComputeBurst(0.01)], []], meta={"lint-ignore": ["TR002"]}
        )
        assert "TR002" not in codes(lint_trace_subject(trace))

    def test_crashing_rule_becomes_dx000(self, monkeypatch):
        from repro.diagnostics import registry as reg

        def boom(ctx, make):
            raise RuntimeError("synthetic failure")

        broken = dataclasses.replace(reg._REGISTRY["TR001"], check=boom)
        monkeypatch.setitem(reg._REGISTRY, "TR001", broken)
        trace = marked([[ComputeBurst(0.01)]])
        found = lint_trace_subject(trace)
        assert "DX000" in codes(found)
        dx = next(d for d in found if d.code == "DX000")
        assert "TR001" in dx.message and dx.severity is Severity.ERROR


class TestDeadlockDetector:
    def test_head_to_head_rendezvous_cycle(self):
        trace = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 10_000), RecvRecord(1)],
                [ComputeBurst(0.01), SendRecord(0, 10_000), RecvRecord(0)],
            ]
        )
        report = analyze_deadlock(trace, RENDEZVOUS)
        assert report.deadlocked
        assert report.cycles == ((0, 1),)
        found = lint_trace_subject(trace, RENDEZVOUS)
        errors = [d for d in found if d.severity is Severity.ERROR]
        assert codes(errors) == {"TR008"}
        # pair counts are balanced: the old W003 heuristic saw nothing
        assert "TR003" not in codes(found)

    def test_three_rank_circular_wait(self):
        ring = marked(
            [
                [ComputeBurst(0.01), RecvRecord(2), SendRecord(1, 10)],
                [ComputeBurst(0.01), RecvRecord(0), SendRecord(2, 10)],
                [ComputeBurst(0.01), RecvRecord(1), SendRecord(0, 10)],
            ]
        )
        report = analyze_deadlock(ring, MYRINET_LIKE)
        assert report.deadlocked and report.cycles == ((0, 1, 2),)

    def test_eager_exchange_is_clean(self):
        trace = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 10), RecvRecord(1)],
                [ComputeBurst(0.01), SendRecord(0, 10), RecvRecord(0)],
            ]
        )
        report = analyze_deadlock(trace, RENDEZVOUS)
        assert not report.deadlocked
        assert not report.undelivered

    def test_nonblocking_breaks_the_cycle(self):
        trace = marked(
            [
                [
                    ComputeBurst(0.01),
                    IsendRecord(1, 10_000, request=1),
                    RecvRecord(1),
                    WaitRecord(1),
                ],
                [
                    ComputeBurst(0.01),
                    IsendRecord(0, 10_000, request=1),
                    RecvRecord(0),
                    WaitRecord(1),
                ],
            ]
        )
        assert not analyze_deadlock(trace, RENDEZVOUS).deadlocked

    def test_orphaned_recv(self):
        trace = marked(
            [[ComputeBurst(0.01)], [ComputeBurst(0.01), RecvRecord(0)]]
        )
        report = analyze_deadlock(trace, MYRINET_LIKE)
        assert report.deadlocked and not report.cycles
        assert [o.rank for o in report.orphans] == [1]
        assert "TR009" in codes(lint_trace_subject(trace))

    def test_undelivered_eager_message(self):
        trace = marked(
            [[ComputeBurst(0.01), SendRecord(1, 10)], [ComputeBurst(0.01)]]
        )
        report = analyze_deadlock(trace, MYRINET_LIKE)
        assert not report.deadlocked
        assert report.undelivered == ((0, 1, 1),)
        assert "TR009" in codes(lint_trace_subject(trace))

    def test_irecv_wait_orphan(self):
        trace = marked(
            [
                [ComputeBurst(0.01)],
                [ComputeBurst(0.01), IrecvRecord(0, request=7), WaitRecord(7)],
            ]
        )
        report = analyze_deadlock(trace, MYRINET_LIKE)
        assert report.deadlocked
        assert [o.rank for o in report.orphans] == [1]

    def test_collective_order_mismatch(self):
        trace = marked(
            [
                [ComputeBurst(0.01), CollectiveRecord("barrier")],
                [ComputeBurst(0.01), CollectiveRecord("bcast", 64)],
            ]
        )
        found = lint_trace_subject(trace)
        assert "TR010" in codes(found)

    def test_collective_entered_before_send_is_a_cycle(self):
        # classic pattern: rank 0 enters the barrier before sending the
        # message rank 1 is still blocked receiving — a circular wait
        trace = marked(
            [
                [ComputeBurst(0.01), CollectiveRecord("barrier")],
                [ComputeBurst(0.01), RecvRecord(0), CollectiveRecord("barrier")],
            ]
        )
        report = analyze_deadlock(trace, MYRINET_LIKE)
        assert report.deadlocked and report.cycles == ((0, 1),)

    def test_builtin_apps_deadlock_free_at_error_level(self):
        for name in ("BT-MZ-32", "CG-32", "MG-32", "IS-32", "WRF-32",
                     "SPECFEM3D-32", "PEPC-128"):
            app = build_app(name, iterations=2)
            trace = MpiSimulator().run(
                app.programs(), record_trace=True, meta={"name": app.name}
            ).trace
            errors = [
                d for d in lint_trace_subject(trace, subject=name)
                if d.severity is Severity.ERROR
            ]
            assert errors == [], f"{name}: {[str(d) for d in errors]}"


class TestGearAndPlatformRules:
    def test_default_sets_have_no_errors(self):
        for gear_set in (
            uniform_gear_set(6),
            avg_discrete_set(),
            ContinuousGearSet(0.8, 2.3),
        ):
            errors = [
                d for d in lint_gear_set(gear_set)
                if d.severity is Severity.ERROR
            ]
            assert errors == []

    def test_gr001_non_monotone_voltage(self):
        decreasing = LinearVoltageLaw(f0=0.8, v0=1.5, f1=2.3, v1=1.0)
        gear_set = ContinuousGearSet(0.8, 2.3, law=decreasing)
        assert "GR001" in codes(lint_gear_set(gear_set))

    def test_gr002_below_validated_range(self):
        from repro.core.gears import unlimited_continuous_set

        assert "GR002" in codes(lint_gear_set(unlimited_continuous_set()))
        assert "GR002" not in codes(lint_gear_set(uniform_gear_set(6)))

    def test_gr003_overclock_off_the_line(self):
        bad = uniform_gear_set(6).with_extra_gear(Gear(2.6, 1.7))
        assert "GR003" in codes(lint_gear_set(bad))
        # the paper's validated 2.6 GHz / 1.6 V point is accepted
        assert "GR003" not in codes(lint_gear_set(avg_discrete_set()))

    def test_platform_defaults_clean(self):
        assert lint_platform(MYRINET_LIKE) == []

    def test_pl001_and_pl002(self):
        weird = PlatformConfig(
            eager_threshold=0, latency=0.5, bandwidth=2e5
        )
        found = codes(lint_platform(weird))
        assert {"PL001", "PL002"} <= found


class TestModelRules:
    def test_defaults_clean(self):
        assert lint_models() == []

    def test_md001_beta_out_of_range(self):
        found = lint_models(beta=1.5)
        assert codes(found) == {"MD001"}
        assert exit_code(found, Severity.ERROR) == 1


class TestResultsRules:
    def _context(self, tmp_path, manifest, csvs=(), golden=None):
        for name, text in csvs:
            (tmp_path / name).write_text(text)
        return ResultsContext(
            manifest, tmp_path, subject="manifest.json", golden=golden
        )

    def test_rs001_error_entry(self, tmp_path):
        ctx = self._context(
            tmp_path,
            {"experiments": {"fig2": {"error": "boom", "seconds": 0.1}}},
        )
        assert "RS001" in codes(run_domain("results", ctx))

    def test_rs002_nan_and_negative_metrics(self, tmp_path):
        ctx = self._context(
            tmp_path,
            {"experiments": {"fig2": {"rows": 2, "seconds": 0.1}}},
            csvs=[
                (
                    "fig2.csv",
                    "application,normalized_energy_pct\nCG-32,nan\n"
                    "MG-32,-4.0\n",
                )
            ],
        )
        found = [d for d in run_domain("results", ctx) if d.code == "RS002"]
        assert len(found) == 2

    def test_rs003_incomplete_campaign(self, tmp_path):
        ctx = self._context(tmp_path, {"experiments": {}})
        assert "RS003" in codes(run_domain("results", ctx))

    def test_rs004_golden_drift(self, tmp_path):
        golden = {
            "config": {"iterations": 3, "beta": 0.5},
            "table3": {"CG-32": [97.82, 78.54]},
        }
        manifest = {
            "config": {"iterations": 3, "beta": 0.5},
            "experiments": {"table3": {"rows": 1}},
        }
        drifted = (
            "application,load_balance_pct,parallel_efficiency_pct\n"
            "CG-32,90.00,78.54\n"
        )
        ctx = self._context(
            tmp_path, manifest, csvs=[("table3.csv", drifted)], golden=golden
        )
        assert "RS004" in codes(run_domain("results", ctx))
        # a different configuration must not be compared
        other = dict(manifest, config={"iterations": 6, "beta": 0.5})
        ctx2 = self._context(
            tmp_path, other, csvs=[("table3.csv", drifted)], golden=golden
        )
        assert "RS004" not in codes(run_domain("results", ctx2))


class TestSarifOutput:
    def test_schema_shape(self):
        trace = marked(
            [[ComputeBurst(0.01)], [ComputeBurst(0.01), RecvRecord(0)]]
        )
        log = to_sarif(lint_trace_subject(trace, subject="toy"))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for descriptor in driver["rules"]:
            assert descriptor["defaultConfiguration"]["level"] in (
                "error", "warning", "note",
            )
        assert run["results"], "expected findings for the orphaned recv"
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            assert result["locations"][0]["logicalLocations"][0]["name"]
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_severity_level_mapping(self):
        assert Severity.ERROR.sarif_level == "error"
        assert Severity.WARNING.sarif_level == "warning"
        assert Severity.INFO.sarif_level == "note"


class TestBaseline:
    def test_roundtrip_and_ratchet(self, tmp_path):
        trace = marked(
            [[ComputeBurst(0.01)], [ComputeBurst(0.01), RecvRecord(0)]]
        )
        found = lint_trace_subject(trace, subject="toy")
        assert found
        path = tmp_path / "baseline.json"
        write_baseline(path, found)
        accepted = load_baseline(path)
        assert apply_baseline(found, accepted) == []
        # a new finding (different subject) is not covered
        fresh = lint_trace_subject(trace, subject="other")
        assert apply_baseline(fresh, accepted) == fresh

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-baseline.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_baseline(path)


class TestLintCli:
    @pytest.fixture()
    def deadlock_trace_path(self, tmp_path):
        trace = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 100_000), RecvRecord(1)],
                [ComputeBurst(0.01), SendRecord(0, 100_000), RecvRecord(0)],
            ]
        )
        path = tmp_path / "deadlock.jsonl"
        write_trace(trace, path)
        return str(path)

    def test_fail_on_levels(self, deadlock_trace_path):
        assert main(["lint", deadlock_trace_path]) == 1
        assert (
            main(["lint", deadlock_trace_path, "--select", "TR001"]) == 0
        )
        # info findings only fail at --fail-on info
        assert (
            main(["lint", deadlock_trace_path, "--select", "TR005",
                  "--fail-on", "warning"]) == 0
        )

    def test_select_ignore_and_json(self, deadlock_trace_path, capsys):
        rc = main(
            ["lint", deadlock_trace_path, "--select", "TR008",
             "--format", "json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in payload] == ["TR008"]
        rc = main(["lint", deadlock_trace_path, "--ignore", "TR"])
        assert rc == 0

    def test_sarif_file_output(self, deadlock_trace_path, tmp_path):
        out = tmp_path / "lint.sarif"
        rc = main(
            ["lint", deadlock_trace_path, "--format", "sarif",
             "-o", str(out)]
        )
        assert rc == 1
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "TR008" for r in log["runs"][0]["results"]
        )

    def test_baseline_workflow(self, deadlock_trace_path, tmp_path):
        baseline = tmp_path / "baseline.json"
        rc = main(
            ["lint", deadlock_trace_path, "--baseline", str(baseline),
             "--write-baseline"]
        )
        assert rc == 0 and baseline.is_file()
        # ratcheted: the accepted deadlock no longer fails the run
        assert (
            main(["lint", deadlock_trace_path, "--baseline", str(baseline)])
            == 0
        )

    def test_builtin_audit_passes_at_error(self):
        assert main(["lint", "--apps", "CG-32,IS-32"]) == 0

    def test_bad_target_is_usage_error(self, tmp_path):
        bogus = tmp_path / "file.txt"
        bogus.write_text("hi")
        assert main(["lint", str(bogus)]) == 2


class TestLegacyShim:
    def test_w006_reports_each_collective_index(self):
        from repro.traces.lint import lint_trace

        trace = marked(
            [
                [
                    ComputeBurst(0.01),
                    CollectiveRecord("alltoall", 100_000),
                    CollectiveRecord("alltoall", 100_000),
                ],
                [
                    ComputeBurst(0.01),
                    CollectiveRecord("alltoall", 10),
                    CollectiveRecord("alltoall", 10),
                ],
            ]
        )
        w006 = [w for w in lint_trace(trace) if w.code == "W006"]
        assert len(w006) == 2
        assert "#0" in w006[0].message and "#1" in w006[1].message

    def test_sort_is_deterministic_and_rank_none_first(self):
        from repro.traces.lint import lint_trace

        trace = Trace.from_streams(
            [[ComputeBurst(0.01)], []]  # W001 trace-wide + W002 rank 1
        )
        warnings = lint_trace(trace)
        key = [(w.code, w.rank is not None, w.rank or 0) for w in warnings]
        assert key == sorted(key)
        assert warnings[0].code == "W001" and warnings[0].rank is None
