"""The compiled replay kernel: bit-exact equivalence with the DES.

The contract under test (see ``repro.netsim.compiled``): for every
world the capability check accepts, ``CompiledProgram.evaluate`` and
``MpiSimulator`` produce *identical* results — same makespan, same
per-rank compute/comm seconds, same end times, same markers, compared
with ``np.array_equal`` (no tolerance).  Worlds outside the supported
subset must be rejected with :class:`UnsupportedWorldError` so the
``auto`` engine can fall back to the DES.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app, vmpi
from repro.core.timemodel import BetaTimeModel
from repro.netsim.compiled import (
    CompiledReplayEngine,
    CompileError,
    UnsupportedWorldError,
    compile_world,
)
from repro.netsim.engines import ENGINE_NAMES, AutoReplayEngine, make_engine
from repro.netsim.enginestats import (
    process_engine_stats,
    reset_engine_stats,
)
from repro.netsim.platform import MYRINET_LIKE
from repro.netsim.simulator import MpiSimulator
from repro.simx.errors import DeadlockError

MODEL = BetaTimeModel(fmax=2.3)


def _both(programs, frequencies=None):
    """(DES result, compiled result) for one world."""
    programs = [list(p) for p in programs]  # apps may hand out generators
    des = MpiSimulator(MYRINET_LIKE, MODEL).run(
        programs, frequencies=frequencies
    )
    compiled = compile_world(programs, MYRINET_LIKE, MODEL).evaluate(
        frequencies
    )
    return des, compiled


def _assert_identical(des, compiled):
    assert compiled.engine == "compiled"
    assert des.engine == "des"
    assert np.array_equal(des.execution_time, compiled.execution_time)
    assert np.array_equal(des.compute_times, compiled.compute_times)
    assert np.array_equal(des.comm_times, compiled.comm_times)
    assert np.array_equal(des.end_times, compiled.end_times)
    assert des.markers == compiled.markers


# ---------------------------------------------------------------------------
# deterministic equivalence
# ---------------------------------------------------------------------------
class TestExactEquivalence:
    def test_eager_halo_world(self):
        nproc = 6
        programs = [
            [vmpi.compute(0.01 * (rank + 1))]
            + list(vmpi.halo_exchange_1d(rank, nproc, nbytes=4096))
            + [vmpi.allreduce(8)]
            for rank in range(nproc)
        ]
        _assert_identical(*_both(programs))

    def test_rendezvous_2d_halo_world(self):
        nproc = 8
        programs = [
            [vmpi.compute(0.005 * (rank + 1), beta=0.4)]
            + list(vmpi.halo_exchange_2d(rank, nproc, nbytes=200_000))
            + [vmpi.barrier()]
            for rank in range(nproc)
        ]
        freqs = np.linspace(0.9, 2.3, nproc)
        _assert_identical(*_both(programs, freqs))

    def test_blocking_rendezvous_pingpong(self):
        big = 500_000  # > eager_threshold: blocking rendezvous
        programs = [
            [vmpi.compute(0.02), vmpi.send(1, big, tag=7),
             vmpi.recv(1, tag=8)],
            [vmpi.compute(0.001), vmpi.recv(0, tag=7),
             vmpi.send(0, big, tag=8)],
        ]
        _assert_identical(*_both(programs, [1.1, 2.3]))

    def test_markers_and_mixed_collectives(self):
        nproc = 4
        programs = [
            [
                rec
                for it in range(3)
                for rec in (
                    vmpi.marker("iter", iteration=it),
                    vmpi.compute(0.002 * (rank + 1)),
                    vmpi.bcast(1024, root=0),
                    vmpi.allreduce(64),
                )
            ]
            for rank in range(nproc)
        ]
        des, compiled = _both(programs, [1.5, 2.3, 0.8, 2.0])
        _assert_identical(des, compiled)
        assert sum(len(per_rank) for per_rank in compiled.markers) == 3 * nproc

    def test_nonblocking_eager_and_rendezvous(self):
        nproc = 4
        programs = []
        for rank in range(nproc):
            left = (rank - 1) % nproc
            right = (rank + 1) % nproc
            programs.append([
                vmpi.irecv(left, tag=1, request=0),
                vmpi.isend(right, 100_000, tag=1, request=1),
                vmpi.compute(0.003 * (rank + 1)),
                vmpi.waitall([0, 1]),
                vmpi.irecv(right, tag=2, request=0),
                vmpi.isend(left, 512, tag=2, request=1),
                vmpi.wait(0),
                vmpi.wait(1),
            ])
        _assert_identical(*_both(programs, [2.3, 1.0, 1.7, 0.9]))

    def test_registered_apps_round_trip(self):
        for app_name in ("MG-32", "BT-MZ-32"):
            app = build_app(app_name, iterations=2)
            programs = app.programs()
            _assert_identical(*_both(programs))


# ---------------------------------------------------------------------------
# property-based: random vmpi worlds
# ---------------------------------------------------------------------------
@st.composite
def random_world(draw):
    nproc = draw(st.integers(min_value=2, max_value=6))
    iters = draw(st.integers(min_value=1, max_value=3))
    halo_bytes = draw(st.sampled_from([512, 8192, 40_000, 120_000]))
    coll = draw(st.sampled_from(["allreduce", "bcast", "barrier", None]))
    base = draw(st.floats(min_value=1e-4, max_value=0.05))
    programs = []
    for rank in range(nproc):
        recs = []
        for it in range(iters):
            recs.append(vmpi.compute(base * (1 + rank + it)))
            recs.extend(vmpi.halo_exchange_1d(rank, nproc, nbytes=halo_bytes,
                                              tag=it))
            if coll == "allreduce":
                recs.append(vmpi.allreduce(64))
            elif coll == "bcast":
                recs.append(vmpi.bcast(2048, root=0))
            elif coll == "barrier":
                recs.append(vmpi.barrier())
        programs.append(recs)
    freqs = [
        draw(st.floats(min_value=0.8, max_value=2.3)) for _ in range(nproc)
    ]
    return programs, freqs


class TestPropertyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_world())
    def test_random_worlds_match_des_exactly(self, world):
        programs, freqs = world
        try:
            program = compile_world(programs, MYRINET_LIKE, MODEL)
        except UnsupportedWorldError:
            return  # capability check declined; auto would use the DES
        des = MpiSimulator(MYRINET_LIKE, MODEL).run(
            [list(p) for p in programs], frequencies=freqs
        )
        _assert_identical(des, program.evaluate(freqs))

    @settings(max_examples=15, deadline=None)
    @given(random_world(), st.integers(min_value=2, max_value=5))
    def test_evaluate_many_matches_scalar_evaluate(self, world, k):
        programs, freqs = world
        try:
            program = compile_world(programs, MYRINET_LIKE, MODEL)
        except UnsupportedWorldError:
            return
        rng = np.random.default_rng(k)
        batch = np.vstack(
            [freqs] + [rng.uniform(0.8, 2.3, len(freqs))
                       for _ in range(k - 1)]
        )
        many = program.evaluate_many(batch)
        for row in range(k):
            one = program.evaluate(batch[row])
            assert many["execution_time"][row] == one.execution_time
            assert np.array_equal(many["compute_times"][row],
                                  one.compute_times)
            assert np.array_equal(many["comm_times"][row], one.comm_times)
            assert np.array_equal(many["end_times"][row], one.end_times)

    def test_acceptance_rate_is_nontrivial(self):
        # The whole point: ordinary vmpi worlds compile.  Every
        # registered app's default world must be accepted.
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL)
        app = build_app("CG-32", iterations=1)
        ok, reason = engine.supports(
            MpiSimulator().run(app.programs(), record_trace=True).trace
        )
        assert ok, reason


# ---------------------------------------------------------------------------
# capability boundaries
# ---------------------------------------------------------------------------
class TestCapabilityChecks:
    def test_wildcard_recv_rejected(self):
        programs = [
            [vmpi.send(1, 64)],
            [vmpi.recv()],  # ANY_SOURCE
        ]
        with pytest.raises(UnsupportedWorldError, match="ANY_SOURCE|wildcard"):
            compile_world(programs, MYRINET_LIKE, MODEL)

    def test_bus_contention_rejected(self):
        constrained = dataclasses.replace(MYRINET_LIKE, buses=2)
        programs = [[vmpi.send(1, 64)], [vmpi.recv(0, tag=0)]]
        with pytest.raises(UnsupportedWorldError, match="bus"):
            compile_world(programs, constrained, MODEL)

    def test_decomposed_collectives_rejected(self):
        decomposed = dataclasses.replace(
            MYRINET_LIKE, decompose_collectives=True
        )
        programs = [[vmpi.allreduce(64)], [vmpi.allreduce(64)]]
        with pytest.raises(UnsupportedWorldError, match="decompose"):
            compile_world(programs, decomposed, MODEL)

    def test_channel_count_mismatch_is_compile_error(self):
        programs = [[vmpi.send(1, 64), vmpi.send(1, 64)],
                    [vmpi.recv(0, tag=0)]]
        with pytest.raises(CompileError):
            compile_world(programs, MYRINET_LIKE, MODEL)

    def test_deadlock_is_compile_error(self):
        big = 500_000  # rendezvous: both senders block
        programs = [
            [vmpi.send(1, big), vmpi.recv(1, tag=0)],
            [vmpi.send(0, big), vmpi.recv(0, tag=0)],
        ]
        with pytest.raises(CompileError, match="deadlock|stuck"):
            compile_world(programs, MYRINET_LIKE, MODEL)

    def test_auto_falls_back_to_des_on_deadlock(self):
        # The DES must own the authentic error, not CompileError.
        big = 500_000
        programs = [
            [vmpi.send(1, big), vmpi.recv(1, tag=0)],
            [vmpi.send(0, big), vmpi.recv(0, tag=0)],
        ]
        engine = AutoReplayEngine(MYRINET_LIKE, MODEL)
        with pytest.raises(DeadlockError):
            engine.run(programs)

    def test_record_intervals_routes_to_des(self):
        programs = [[vmpi.compute(0.01)], [vmpi.compute(0.02)]]
        engine = AutoReplayEngine(MYRINET_LIKE, MODEL)
        result = engine.run(
            [list(p) for p in programs], record_intervals=True
        )
        assert result.engine == "des"
        assert result.intervals is not None

    def test_compiled_engine_refuses_record_flags(self):
        programs = [[vmpi.compute(0.01)], [vmpi.compute(0.02)]]
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL)
        with pytest.raises(UnsupportedWorldError):
            engine.run([list(p) for p in programs], record_intervals=True)
        with pytest.raises(UnsupportedWorldError):
            engine.run([list(p) for p in programs], record_trace=True)


# ---------------------------------------------------------------------------
# auto routing + observability
# ---------------------------------------------------------------------------
class TestAutoEngine:
    def test_supported_world_uses_compiled(self):
        programs = [[vmpi.compute(0.01), vmpi.allreduce(64)]
                    for _ in range(4)]
        engine = AutoReplayEngine(MYRINET_LIKE, MODEL)
        result = engine.run([list(p) for p in programs])
        assert result.engine == "compiled"

    def test_fallback_increments_counter(self):
        reset_engine_stats()
        programs = [[vmpi.send(1, 64)], [vmpi.recv()]]  # wildcard
        engine = AutoReplayEngine(MYRINET_LIKE, MODEL)
        result = engine.run([list(p) for p in programs])
        assert result.engine == "des"
        stats = process_engine_stats()
        assert stats["auto_fallbacks"] == 1
        assert stats["des_runs"] == 1

    def test_compiled_run_updates_counters(self):
        reset_engine_stats()
        programs = [[vmpi.compute(0.01), vmpi.allreduce(64)]
                    for _ in range(4)]
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL)
        result = engine.run([list(p) for p in programs])
        stats = process_engine_stats()
        assert stats["compiled_compiles"] == 1
        assert stats["compiled_runs"] == 1
        assert stats["compiled_evaluations"] == 1
        assert stats["compiled_instructions"] == result.events
        assert stats["compiled_seconds"] >= 0.0

    def test_make_engine_names(self):
        assert make_engine("des").name == "des"
        assert make_engine("compiled").name == "compiled"
        assert make_engine("auto").name == "auto"
        assert ENGINE_NAMES == ("des", "compiled", "auto")
        with pytest.raises(ValueError, match="engine"):
            make_engine("turbo")

    def test_validate_mode_cross_checks(self):
        programs = [[vmpi.compute(0.01 * (r + 1)), vmpi.allreduce(64)]
                    for r in range(4)]
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL, validate=True)
        result = engine.run([list(p) for p in programs])
        assert result.engine == "compiled"


class TestCompileCache:
    def test_compile_trace_caches_per_trace(self):
        app = build_app("MG-32", iterations=1)
        trace = MpiSimulator().run(app.programs(), record_trace=True).trace
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL)
        first = engine.compile_trace(trace)
        second = engine.compile_trace(trace)
        assert first is second

    def test_negative_cache_re_raises(self):
        from repro.traces.trace import Trace

        programs = [[vmpi.send(1, 64)], [vmpi.recv()]]
        trace = Trace.from_streams(programs)
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL)
        with pytest.raises(UnsupportedWorldError):
            engine.compile_trace(trace)
        with pytest.raises(UnsupportedWorldError):
            engine.compile_trace(trace)


class TestEvaluateManyValidation:
    def _program(self):
        programs = [[vmpi.compute(0.01), vmpi.allreduce(64)]
                    for _ in range(4)]
        return compile_world(programs, MYRINET_LIKE, MODEL)

    def test_wrong_shape_rejected(self):
        program = self._program()
        with pytest.raises(ValueError):
            program.evaluate_many(np.ones((3, 7)))

    def test_nonpositive_frequency_rejected(self):
        program = self._program()
        bad = np.ones((2, 4))
        bad[1, 2] = 0.0
        with pytest.raises(ValueError):
            program.evaluate_many(bad)


# ---------------------------------------------------------------------------
# end-to-end identity: engine choice never changes reports
# ---------------------------------------------------------------------------
class TestEngineIdentity:
    def test_runner_reports_byte_identical(self, tmp_path):
        from repro.cli import build_gear_set
        from repro.core.algorithms import MaxAlgorithm
        from repro.experiments.runner import Runner, RunnerConfig

        payloads = {}
        for engine in ("des", "auto"):
            runner = Runner(RunnerConfig(iterations=2, engine=engine))
            report = runner.balance(
                "BT-MZ-32", build_gear_set("uniform:6"), MaxAlgorithm()
            )
            payloads[engine] = json.dumps(report.to_json(), sort_keys=True)
        assert payloads["des"] == payloads["auto"]

    def test_balancer_on_compiled_engine_matches_des(self):
        from repro.core.balancer import PowerAwareLoadBalancer
        from repro.core.gears import uniform_gear_set

        reports = {}
        for engine in ("des", "auto"):
            balancer = PowerAwareLoadBalancer(
                gear_set=uniform_gear_set(6), engine=engine
            )
            trace = balancer.trace_app(build_app("MG-32", iterations=2))
            reports[engine] = balancer.balance_trace(trace)
        des, auto = reports["des"], reports["auto"]
        assert des.new_time == auto.new_time
        assert des.original_time == auto.original_time
        assert des.normalized_energy == auto.normalized_energy
        assert list(des.assignment.frequencies) == list(
            auto.assignment.frequencies
        )
