"""Unit tests for the analytic collective cost models and their inverse."""

import pytest

from repro.netsim.collectives import collective_time, invert_collective
from repro.netsim.platform import PlatformConfig
from repro.traces.records import COLLECTIVE_OPS

P = PlatformConfig(latency=1e-5, bandwidth=1e8)


class TestCosts:
    def test_single_rank_is_free(self):
        for op in COLLECTIVE_OPS:
            assert collective_time(op, 1024, 1, P) == 0.0

    def test_barrier_is_log_latency(self):
        assert collective_time("barrier", 0, 16, P) == pytest.approx(4 * 1e-5)
        assert collective_time("barrier", 0, 17, P) == pytest.approx(5 * 1e-5)

    def test_barrier_ignores_size(self):
        assert collective_time("barrier", 10**6, 8, P) == collective_time(
            "barrier", 0, 8, P
        )

    def test_bcast_tree_model(self):
        expected = (1e-5 + 1000 / 1e8) * 3  # ceil(log2 8) = 3
        assert collective_time("bcast", 1000, 8, P) == pytest.approx(expected)

    def test_allreduce_is_twice_bcast(self):
        assert collective_time("allreduce", 512, 8, P) == pytest.approx(
            2 * collective_time("bcast", 512, 8, P)
        )

    def test_alltoall_pairwise_model(self):
        expected = 7 * (1e-5 + 2048 / 1e8)
        assert collective_time("alltoall", 2048, 8, P) == pytest.approx(expected)

    def test_alltoall_dominates_at_scale(self):
        # (P-1) wire terms vs log2 P: alltoall must be the most expensive
        for op in ("bcast", "allreduce", "allgather"):
            assert collective_time("alltoall", 10**6, 64, P) > collective_time(
                op, 10**6, 64, P
            )

    def test_cost_monotone_in_nbytes(self):
        for op in set(COLLECTIVE_OPS) - {"barrier"}:
            assert collective_time(op, 2000, 8, P) > collective_time(op, 1000, 8, P)

    def test_cost_monotone_in_nproc(self):
        for op in COLLECTIVE_OPS:
            assert collective_time(op, 1000, 64, P) >= collective_time(
                op, 1000, 8, P
            )

    def test_platform_factor_scales(self):
        p2 = PlatformConfig(
            latency=1e-5, bandwidth=1e8, collective_factors={"bcast": 3.0}
        )
        assert collective_time("bcast", 100, 8, p2) == pytest.approx(
            3.0 * collective_time("bcast", 100, 8, P)
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            collective_time("scan", 0, 8, P)

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            collective_time("bcast", -1, 8, P)
        with pytest.raises(ValueError):
            collective_time("bcast", 0, 0, P)


class TestAlgorithmVariants:
    def test_default_matches_named_default(self):
        for op, algorithms in __import__(
            "repro.netsim.collectives", fromlist=["COLLECTIVE_ALGORITHMS"]
        ).COLLECTIVE_ALGORITHMS.items():
            default_name = next(iter(algorithms))
            named = PlatformConfig(
                latency=1e-5, bandwidth=1e8,
                collective_algorithms={op: default_name},
            )
            assert collective_time(op, 4096, 16, named) == pytest.approx(
                collective_time(op, 4096, 16, P)
            )

    def test_ring_allreduce_wins_for_large_messages(self):
        ring = PlatformConfig(latency=1e-5, bandwidth=1e8,
                              collective_algorithms={"allreduce": "ring"})
        big = 10**7
        assert collective_time("allreduce", big, 64, ring) < collective_time(
            "allreduce", big, 64, P
        )

    def test_default_tree_wins_for_small_messages(self):
        ring = PlatformConfig(latency=1e-5, bandwidth=1e8,
                              collective_algorithms={"allreduce": "ring"})
        assert collective_time("allreduce", 8, 64, ring) > collective_time(
            "allreduce", 8, 64, P
        )

    def test_auto_takes_the_cheapest(self):
        auto = PlatformConfig(latency=1e-5, bandwidth=1e8,
                              collective_algorithms={"allreduce": "auto"})
        for nbytes in (8, 4096, 10**6, 10**8):
            t_auto = collective_time("allreduce", nbytes, 32, auto)
            for name in ("reduce-bcast", "recursive-doubling", "ring"):
                named = PlatformConfig(
                    latency=1e-5, bandwidth=1e8,
                    collective_algorithms={"allreduce": name},
                )
                assert t_auto <= collective_time(
                    "allreduce", nbytes, 32, named
                ) + 1e-15

    def test_bruck_beats_pairwise_for_tiny_alltoall(self):
        bruck = PlatformConfig(latency=1e-4, bandwidth=1e8,
                               collective_algorithms={"alltoall": "bruck"})
        assert collective_time("alltoall", 8, 64, bruck) < collective_time(
            "alltoall", 8, 64, PlatformConfig(latency=1e-4, bandwidth=1e8)
        )

    def test_unknown_algorithm_rejected(self):
        bad = PlatformConfig(latency=1e-5, bandwidth=1e8,
                             collective_algorithms={"bcast": "telepathy"})
        with pytest.raises(ValueError, match="unknown algorithm"):
            collective_time("bcast", 8, 8, bad)

    def test_invert_with_variant_round_trips(self):
        ring = PlatformConfig(latency=1e-5, bandwidth=1e8,
                              collective_algorithms={"allreduce": "ring"})
        target = 0.004
        nbytes = invert_collective("allreduce", target, 16, ring)
        assert collective_time("allreduce", nbytes, 16, ring) == pytest.approx(
            target, rel=1e-3
        )


class TestInverse:
    @pytest.mark.parametrize("op", sorted(set(COLLECTIVE_OPS) - {"barrier"}))
    @pytest.mark.parametrize("nproc", [2, 8, 32, 100])
    def test_round_trip(self, op, nproc):
        target = 0.005
        nbytes = invert_collective(op, target, nproc, P)
        assert nbytes > 0
        achieved = collective_time(op, nbytes, nproc, P)
        assert achieved == pytest.approx(target, rel=1e-3)

    def test_latency_bound_duration_gives_zero(self):
        # shorter than pure latency: no size can make it shorter
        assert invert_collective("bcast", 1e-9, 8, P) == 0

    def test_barrier_is_size_independent(self):
        assert invert_collective("barrier", 1.0, 8, P) == 0

    def test_single_rank_needs_nothing(self):
        assert invert_collective("allreduce", 1.0, 1, P) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            invert_collective("bcast", -0.1, 8, P)
