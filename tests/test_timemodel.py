"""Unit tests for the β time model (Eq. 3) and its inversion."""

import math

import pytest

from repro.core.timemodel import (
    BetaTimeModel,
    required_frequency,
    scaled_time,
    time_ratio,
)

FMAX = 2.3


class TestTimeRatio:
    def test_nominal_frequency_is_unity(self):
        assert time_ratio(FMAX, FMAX, 0.5) == pytest.approx(1.0)

    def test_beta_one_halving_frequency_doubles_time(self):
        # the paper's exact statement of beta = 1
        assert time_ratio(FMAX / 2, FMAX, 1.0) == pytest.approx(2.0)

    def test_beta_zero_frequency_irrelevant(self):
        assert time_ratio(0.5, FMAX, 0.0) == pytest.approx(1.0)
        assert time_ratio(FMAX, FMAX, 0.0) == pytest.approx(1.0)

    def test_beta_half_at_half_frequency(self):
        assert time_ratio(FMAX / 2, FMAX, 0.5) == pytest.approx(1.5)

    def test_overclock_shrinks_ratio(self):
        assert time_ratio(FMAX * 1.2, FMAX, 0.5) < 1.0

    def test_memory_bound_floor(self):
        # as f -> inf the ratio tends to 1 - beta
        assert time_ratio(1e9, FMAX, 0.4) == pytest.approx(0.6, abs=1e-6)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            time_ratio(0.0, FMAX, 0.5)
        with pytest.raises(ValueError):
            time_ratio(1.0, 0.0, 0.5)
        with pytest.raises(ValueError):
            time_ratio(1.0, FMAX, 1.5)


class TestScaledTime:
    def test_scales_linearly_in_base_time(self):
        assert scaled_time(4.0, FMAX / 2, FMAX, 0.5) == pytest.approx(6.0)

    def test_zero_time_stays_zero(self):
        assert scaled_time(0.0, 1.0, FMAX, 0.5) == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            scaled_time(-1.0, 1.0, FMAX, 0.5)


class TestRequiredFrequency:
    def test_target_equals_base_needs_fmax(self):
        assert required_frequency(2.0, 2.0, FMAX, 0.5) == pytest.approx(FMAX)

    def test_inversion_round_trips(self):
        for beta in (0.3, 0.5, 0.8, 1.0):
            for stretch in (1.0, 1.3, 2.0, 4.0):
                f = required_frequency(1.0, stretch, FMAX, beta)
                assert scaled_time(1.0, f, FMAX, beta) == pytest.approx(stretch)

    def test_faster_target_needs_overclock(self):
        f = required_frequency(2.0, 1.8, FMAX, 0.5)
        assert f > FMAX

    def test_unattainable_target_is_inf(self):
        # ratio <= 1 - beta cannot be reached at any finite frequency
        assert required_frequency(2.0, 0.9, FMAX, 0.5) == math.inf

    def test_boundary_target_is_inf(self):
        assert required_frequency(2.0, 1.0 - 0.5, FMAX, 0.5) == math.inf

    def test_empty_phase_needs_nothing(self):
        assert required_frequency(0.0, 1.0, FMAX, 0.5) == 0.0

    def test_zero_target_with_work_is_inf(self):
        assert required_frequency(1.0, 0.0, FMAX, 0.5) == math.inf

    def test_beta_zero_any_or_nothing(self):
        assert required_frequency(1.0, 1.0, FMAX, 0.0) == 0.0
        assert required_frequency(1.0, 2.0, FMAX, 0.0) == 0.0
        assert required_frequency(1.0, 0.99, FMAX, 0.0) == math.inf

    def test_lower_beta_needs_lower_frequency(self):
        # memory-bound codes can slow the clock much further (§5.3.3)
        f_mem = required_frequency(1.0, 1.5, FMAX, 0.3)
        f_cpu = required_frequency(1.0, 1.5, FMAX, 0.9)
        assert f_mem < f_cpu


class TestBetaTimeModel:
    def test_defaults(self):
        model = BetaTimeModel(fmax=FMAX)
        assert model.beta == 0.5

    def test_scale_and_frequency_for_consistent(self):
        model = BetaTimeModel(fmax=FMAX, beta=0.6)
        f = model.frequency_for(3.0, 4.5)
        assert model.scale(3.0, f) == pytest.approx(4.5)

    def test_per_call_beta_override(self):
        model = BetaTimeModel(fmax=FMAX, beta=0.5)
        assert model.ratio(FMAX / 2, beta=1.0) == pytest.approx(2.0)

    def test_min_time_at_ceiling(self):
        model = BetaTimeModel(fmax=FMAX, beta=0.5)
        assert model.min_time_at(2.0, FMAX * 1.2) == pytest.approx(
            scaled_time(2.0, FMAX * 1.2, FMAX, 0.5)
        )

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            BetaTimeModel(fmax=0.0)
        with pytest.raises(ValueError):
            BetaTimeModel(fmax=FMAX, beta=2.0)
