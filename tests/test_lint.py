"""Unit tests for the trace linter."""

from repro.apps import build_app
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.traces.lint import lint_trace
from repro.traces.records import (
    ANY_SOURCE,
    CollectiveRecord,
    ComputeBurst,
    MarkerRecord,
    RecvRecord,
    SendRecord,
)
from repro.traces.trace import Trace


def codes(warnings):
    return {w.code for w in warnings}


def marked(records_per_rank):
    """Prefix every rank with an iteration marker (suppresses W001)."""
    return Trace.from_streams(
        [[MarkerRecord("iter", 0), *recs] for recs in records_per_rank]
    )


class TestChecks:
    def test_clean_trace_no_warnings(self):
        t = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 100)],
                [ComputeBurst(0.02), RecvRecord(0)],
            ]
        )
        assert lint_trace(t) == []

    def test_w001_missing_markers(self):
        t = Trace.from_streams([[ComputeBurst(0.01)], [ComputeBurst(0.01)]])
        assert "W001" in codes(lint_trace(t))

    def test_w002_idle_rank(self):
        t = marked([[ComputeBurst(0.01)], []])
        warnings = [w for w in lint_trace(t) if w.code == "W002"]
        assert len(warnings) == 1
        assert warnings[0].rank == 1

    def test_w003_unmatched_pair(self):
        t = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 10), SendRecord(1, 10)],
                [ComputeBurst(0.01), RecvRecord(0)],
            ]
        )
        w003 = [w for w in lint_trace(t) if w.code == "W003"]
        assert len(w003) == 1
        assert "2 send(s) vs 1 recv(s)" in w003[0].message

    def test_w003_suppressed_by_wildcard(self):
        t = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 10), SendRecord(1, 10)],
                [ComputeBurst(0.01), RecvRecord(ANY_SOURCE), RecvRecord(0)],
            ]
        )
        assert "W003" not in codes(lint_trace(t))

    def test_w004_wildcards_flagged(self):
        t = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 10)],
                [ComputeBurst(0.01), RecvRecord(ANY_SOURCE)],
            ]
        )
        assert "W004" in codes(lint_trace(t))

    def test_w005_eager_cliff(self):
        platform = PlatformConfig(eager_threshold=1000)
        t = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 1050)],
                [ComputeBurst(0.01), RecvRecord(0)],
            ]
        )
        assert "W005" in codes(lint_trace(t, platform))
        # well above the threshold: no cliff warning
        t2 = marked(
            [
                [ComputeBurst(0.01), SendRecord(1, 5000)],
                [ComputeBurst(0.01), RecvRecord(0)],
            ]
        )
        assert "W005" not in codes(lint_trace(t2, platform))

    def test_w006_collective_spread(self):
        t = marked(
            [
                [ComputeBurst(0.01), CollectiveRecord("alltoall", 100_000)],
                [ComputeBurst(0.01), CollectiveRecord("alltoall", 10)],
            ]
        )
        assert "W006" in codes(lint_trace(t))

    def test_w007_overhead_dominated(self):
        platform = PlatformConfig(latency=1e-3)
        t = marked([[ComputeBurst(1e-6) for _ in range(8)]] * 2)
        assert "W007" in codes(lint_trace(t, platform))


class TestOnRealTraces:
    def test_paper_skeletons_mostly_clean(self):
        app = build_app("MG-16", iterations=2)
        trace = MpiSimulator().run(
            app.programs(), record_trace=True, meta={"name": app.name}
        ).trace
        findings = codes(lint_trace(trace))
        # structural hygiene: no missing markers, idle ranks or leaks
        assert not findings & {"W001", "W002", "W003"}

    def test_is_weighted_alltoall_triggers_spread(self):
        app = build_app("IS-32", iterations=2)
        trace = MpiSimulator().run(
            app.programs(), record_trace=True, meta={"name": app.name}
        ).trace
        assert "W006" in codes(lint_trace(trace))

    def test_warning_str_format(self):
        t = Trace.from_streams([[ComputeBurst(0.01)], []])
        text = [str(w) for w in lint_trace(t)]
        assert any(w.startswith("W001:") for w in text)
        assert any("(rank 1)" in w for w in text)
