"""Unit tests for trace transformations (the Dimemas tracefile rewrite)."""

import pytest

from repro.core.timemodel import BetaTimeModel
from repro.traces.records import ComputeBurst, MarkerRecord, SendRecord
from repro.traces.trace import Trace
from repro.traces.transform import concat_traces, cut_iterations, scale_compute

MODEL = BetaTimeModel(fmax=2.3, beta=0.5)


def simple_trace():
    return Trace.from_streams(
        [
            [ComputeBurst(1.0), SendRecord(1, 10)],
            [ComputeBurst(2.0)],
        ],
        meta={"name": "t"},
    )


class TestScaleCompute:
    def test_nominal_frequency_is_identity(self):
        t = simple_trace()
        scaled = scale_compute(t, 2.3, MODEL)
        assert scaled[0].records[0].duration == pytest.approx(1.0)
        assert scaled[1].records[0].duration == pytest.approx(2.0)

    def test_half_frequency_with_beta_half(self):
        t = simple_trace()
        scaled = scale_compute(t, 1.15, MODEL)
        # ratio = 0.5*(2-1)+1 = 1.5
        assert scaled[0].records[0].duration == pytest.approx(1.5)

    def test_per_rank_frequencies(self):
        t = simple_trace()
        scaled = scale_compute(t, [1.15, 2.3], MODEL)
        assert scaled[0].records[0].duration == pytest.approx(1.5)
        assert scaled[1].records[0].duration == pytest.approx(2.0)

    def test_non_compute_records_pass_through(self):
        t = simple_trace()
        scaled = scale_compute(t, 1.15, MODEL)
        assert scaled[0].records[1] == SendRecord(1, 10)

    def test_per_burst_beta_override_honoured_then_dropped(self):
        t = Trace.from_streams([[ComputeBurst(1.0, beta=1.0)]])
        scaled = scale_compute(t, 1.15, MODEL)
        # beta=1: halving frequency doubles time
        burst = scaled[0].records[0]
        assert burst.duration == pytest.approx(2.0)
        # rewritten burst is an actual duration; override must not persist
        assert burst.beta is None

    def test_overclock_shrinks_duration(self):
        t = simple_trace()
        scaled = scale_compute(t, 2.76, MODEL)  # +20%
        assert scaled[0].records[0].duration < 1.0

    def test_metadata_records_provenance(self):
        scaled = scale_compute(simple_trace(), [2.3, 1.15], MODEL)
        assert scaled.meta["scaled_frequencies"] == [2.3, 1.15]
        assert scaled.meta["time_model"] == {"fmax": 2.3, "beta": 0.5}

    def test_original_trace_unmodified(self):
        t = simple_trace()
        scale_compute(t, 1.15, MODEL)
        assert t[0].records[0].duration == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            scale_compute(simple_trace(), [1.0, 1.0, 1.0], MODEL)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            scale_compute(simple_trace(), [0.0, 1.0], MODEL)


class TestCutIterations:
    def make_iter_trace(self):
        def rank(scale):
            recs = [ComputeBurst(99.0)]  # initialization, must be dropped
            for it in range(3):
                recs.append(MarkerRecord("iter", it))
                recs.append(ComputeBurst(scale * (it + 1)))
            return recs

        return Trace.from_streams([rank(1.0), rank(2.0)])

    def test_cut_single_iteration(self):
        cut = cut_iterations(self.make_iter_trace(), 1, 1)
        assert cut[0].compute_time() == pytest.approx(2.0)
        assert cut[1].compute_time() == pytest.approx(4.0)

    def test_cut_range(self):
        cut = cut_iterations(self.make_iter_trace(), 0, 1)
        assert cut[0].compute_time() == pytest.approx(1.0 + 2.0)

    def test_initialization_dropped(self):
        cut = cut_iterations(self.make_iter_trace(), 0, 2)
        assert cut[0].compute_time() == pytest.approx(6.0)  # not 99+6

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            cut_iterations(self.make_iter_trace(), 7, 9)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            cut_iterations(self.make_iter_trace(), 2, 1)

    def test_markerless_trace_rejected(self):
        t = simple_trace()
        with pytest.raises(ValueError, match="iteration markers"):
            cut_iterations(t, 0, 0)


class TestConcat:
    def test_concat_doubles_compute(self):
        t = simple_trace()
        cc = concat_traces([t, t])
        assert cc[0].compute_time() == pytest.approx(2.0)
        assert cc.total_records() == 2 * t.total_records()

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different worlds"):
            concat_traces([simple_trace(), Trace(3)])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_traces([])
