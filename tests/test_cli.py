"""Unit tests for the command-line interface."""

import argparse

import pytest

from repro.cli import build_gear_set, main
from repro.core.gears import ContinuousGearSet, DiscreteGearSet


class TestBuildGearSet:
    def test_uniform(self):
        gs = build_gear_set("uniform:6")
        assert isinstance(gs, DiscreteGearSet)
        assert len(gs) == 6

    def test_exponential(self):
        gs = build_gear_set("exponential:5")
        assert len(gs) == 5

    def test_unlimited_and_limited(self):
        assert isinstance(build_gear_set("unlimited"), ContinuousGearSet)
        assert build_gear_set("limited").fmin == pytest.approx(0.8)

    def test_overclocked(self):
        gs = build_gear_set("limited+oc10")
        assert gs.fmax == pytest.approx(2.53)

    def test_avg_discrete(self):
        gs = build_gear_set("avg-discrete")
        assert gs.fmax == pytest.approx(2.6)

    def test_case_insensitive(self):
        assert len(build_gear_set("UNIFORM:4")) == 4

    def test_bad_spec_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            build_gear_set("turbo:9000")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table3" in out

    def test_run_table_gears(self, capsys):
        assert main(["run", "table_gears"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out or "uniform-6" in out

    def test_run_with_subset_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "t3.csv"
        code = main(
            ["run", "table3", "--apps", "CG-32,IS-32", "--iterations", "2",
             "--csv", str(csv_path)]
        )
        assert code == 0
        text = csv_path.read_text()
        assert "CG-32" in text and "IS-32" in text
        assert "BT-MZ-32" not in text

    def test_run_fig3_with_svg(self, capsys, tmp_path):
        svg_path = tmp_path / "fig3.svg"
        code = main(
            ["run", "fig3", "--apps", "CG-32,IS-32", "--iterations", "2",
             "--svg", str(svg_path)]
        )
        assert code == 0
        assert svg_path.read_text().startswith("<svg")

    def test_balance(self, capsys):
        code = main(["balance", "IS-16", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IS-16" in out and "normalized_energy" in out

    def test_balance_avg_with_gears(self, capsys):
        code = main(
            ["balance", "CG-16", "--algorithm", "avg",
             "--gears", "avg-discrete", "--iterations", "2"]
        )
        assert code == 0
        assert "AVG" in capsys.readouterr().out

    def test_trace_writes_file(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        code = main(["trace", "CG-8", "-o", str(out_path), "--iterations", "2"])
        assert code == 0
        from repro.traces.jsonio import read_trace

        trace = read_trace(out_path)
        assert trace.nproc == 8

    def test_timeline(self, capsys):
        code = main(["timeline", "BT-MZ-16", "--iterations", "2", "--width", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out and "r0" in out

    def test_compare(self, capsys):
        code = main(["compare", "PEPC-16", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAX (paper, static)" in out
        assert "per-phase MAX" in out
        assert "Jitter" in out

    def test_platform_dump_and_reuse(self, capsys, tmp_path):
        path = tmp_path / "plat.json"
        assert main(["platform", "-o", str(path)]) == 0
        assert main(
            ["run", "table3", "--apps", "CG-16", "--iterations", "2",
             "--platform", str(path)]
        ) == 0
        assert "CG-16" in capsys.readouterr().out

    def test_reproduce_all(self, capsys, tmp_path):
        out = tmp_path / "res"
        code = main(
            ["reproduce-all", "--out", str(out), "--iterations", "2",
             "--apps", "CG-16,IS-16", "--experiments", "table_gears,fig3"]
        )
        assert code == 0
        assert (out / "REPORT.md").exists()
        assert (out / "manifest.json").exists()

    def test_reproduce_all_parallel_with_cache(self, capsys, tmp_path):
        import json

        out = tmp_path / "res"
        argv = ["reproduce-all", "--out", str(out), "--iterations", "2",
                "--apps", "CG-16,IS-16", "--experiments", "table_gears,fig3",
                "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["jobs"] == 2
        assert manifest["errors"] == 0
        assert manifest["cache"]["enabled"] is True
        assert manifest["cache"]["misses"] > 0

    def test_reproduce_all_no_cache(self, capsys, tmp_path):
        import json

        out = tmp_path / "res"
        assert main(
            ["reproduce-all", "--out", str(out), "--iterations", "2",
             "--apps", "CG-16", "--experiments", "table_gears", "--no-cache"]
        ) == 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["cache"] == {
            "enabled": False, "dir": None, "hits": 0, "misses": 0,
            "corrupt": 0, "peer_hits": 0, "peer_misses": 0,
            "peer_corrupt": 0,
        }

    def test_info_on_written_trace(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        main(["trace", "MG-8", "-o", str(path), "--iterations", "2"])
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "structurally valid" in out
        assert "load balance" in out

    def test_run_markdown_output(self, capsys):
        assert main(["run", "table_gears", "--md"]) == 0
        out = capsys.readouterr().out
        assert out.strip().startswith("| set |")

    def test_unknown_experiment_errors(self):
        with pytest.raises(ValueError):
            main(["run", "fig42"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestSaveAssignment:
    def test_balance_writes_assignment_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "assignment.json"
        code = main(
            ["balance", "BT-MZ-16", "--iterations", "2",
             "--save-assignment", str(path)]
        )
        assert code == 0
        from repro.core.algorithms import FrequencyAssignment

        data = json.loads(path.read_text())
        assignment = FrequencyAssignment.from_dict(data)
        assert assignment.nproc == 16
        assert assignment.algorithm == "MAX"
