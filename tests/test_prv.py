"""Unit tests for the Paraver-like .prv export/parse round trip."""

import io

import pytest

from repro.apps import vmpi
from repro.netsim.simulator import MpiSimulator
from repro.traces.prv import STATE_IDS, parse_prv, write_prv


@pytest.fixture()
def run_result(fast_platform):
    programs = [
        [vmpi.compute(1.0), vmpi.barrier()],
        [vmpi.compute(2.0), vmpi.barrier()],
    ]
    return MpiSimulator(platform=fast_platform).run(
        programs, record_intervals=True
    )


class TestWrite:
    def test_header_format(self, run_result):
        buf = io.StringIO()
        write_prv(run_result, buf)
        header = buf.getvalue().splitlines()[0]
        assert header.startswith("#Paraver")
        assert header.endswith(":2")

    def test_state_records_emitted(self, run_result):
        buf = io.StringIO()
        write_prv(run_result, buf)
        lines = buf.getvalue().splitlines()[1:]
        assert all(line.startswith("1:") for line in lines)
        # rank 0: compute + collective wait; rank 1: compute only (its
        # zero-duration barrier interval is not recorded)
        assert len(lines) == 3

    def test_requires_intervals(self, fast_platform):
        result = MpiSimulator(platform=fast_platform).run([[vmpi.compute(1.0)]])
        with pytest.raises(ValueError, match="record_intervals"):
            write_prv(result, io.StringIO())

    def test_file_output(self, run_result, tmp_path):
        path = tmp_path / "run.prv"
        write_prv(run_result, path)
        assert path.read_text().startswith("#Paraver")


class TestRoundTrip:
    def test_parse_recovers_states(self, run_result):
        buf = io.StringIO()
        write_prv(run_result, buf)
        buf.seek(0)
        prv = parse_prv(buf)
        assert prv.nproc == 2
        assert prv.duration == pytest.approx(run_result.execution_time, abs=1e-8)
        assert prv.state_time(0, "compute") == pytest.approx(1.0, abs=1e-8)
        assert prv.state_time(1, "compute") == pytest.approx(2.0, abs=1e-8)
        # rank 0 waits ~1s in the collective
        assert prv.state_time(0, "collective") == pytest.approx(1.0, abs=1e-6)


class TestParseErrors:
    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="not a .prv"):
            parse_prv(io.StringIO("nonsense\n"))

    def test_malformed_record_rejected(self):
        text = "#Paraver (repro): 1000:1\n2:0:0:10:1\n"
        with pytest.raises(ValueError, match="unsupported"):
            parse_prv(io.StringIO(text))

    def test_unknown_state_rejected(self):
        text = "#Paraver (repro): 1000:1\n1:0:0:10:99\n"
        with pytest.raises(ValueError, match="unknown state"):
            parse_prv(io.StringIO(text))

    def test_rank_out_of_range_rejected(self):
        text = "#Paraver (repro): 1000:1\n1:5:0:10:1\n"
        with pytest.raises(ValueError, match="out of range"):
            parse_prv(io.StringIO(text))

    def test_comment_lines_skipped(self):
        text = "#Paraver (repro): 1000:1\n# a comment\n1:0:0:10:1\n"
        prv = parse_prv(io.StringIO(text))
        assert len(prv.intervals[0]) == 1

    def test_state_id_table_consistent(self):
        assert STATE_IDS["compute"] == 1
        assert len(set(STATE_IDS.values())) == len(STATE_IDS)
