"""Unit tests for generator-based processes and signals."""

import pytest

from repro.simx.engine import Engine
from repro.simx.errors import DeadlockError, ProcessFailure, SimulationError
from repro.simx.process import Hold, Process, Signal, WaitSignal, run_processes


class TestHold:
    def test_hold_advances_virtual_time(self):
        eng = Engine()
        times = []

        def prog():
            yield Hold(1.5)
            times.append(eng.now)
            yield Hold(2.5)
            times.append(eng.now)

        Process(eng, prog())
        eng.run()
        assert times == [1.5, 4.0]

    def test_zero_hold_allowed(self):
        eng = Engine()

        def prog():
            yield Hold(0.0)
            return "done"

        proc = Process(eng, prog())
        eng.run()
        assert proc.finished
        assert proc.done.value == "done"

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            Hold(-0.1)


class TestSignal:
    def test_waiter_resumes_with_trigger_value(self):
        eng = Engine()
        sig = Signal("s")
        got = []

        def waiter():
            value = yield WaitSignal(sig)
            got.append((value, eng.now))

        def firer():
            yield Hold(3.0)
            sig.trigger("payload")

        Process(eng, waiter())
        Process(eng, firer())
        eng.run()
        assert got == [("payload", 3.0)]

    def test_wait_on_already_triggered_signal_is_immediate(self):
        eng = Engine()
        sig = Signal()
        sig.trigger(42)

        def prog():
            value = yield WaitSignal(sig)
            return value

        proc = Process(eng, prog())
        eng.run()
        assert proc.done.value == 42
        assert eng.now == 0.0

    def test_multiple_waiters_all_wake(self):
        eng = Engine()
        sig = Signal()
        woke = []

        def waiter(i):
            yield WaitSignal(sig)
            woke.append(i)

        for i in range(5):
            Process(eng, waiter(i))
        eng.schedule(1.0, sig.trigger, None)
        eng.run()
        assert woke == [0, 1, 2, 3, 4]

    def test_double_trigger_rejected(self):
        sig = Signal("x")
        sig.trigger(1)
        with pytest.raises(SimulationError, match="twice"):
            sig.trigger(2)

    def test_value_before_trigger_rejected(self):
        sig = Signal("y")
        with pytest.raises(SimulationError):
            _ = sig.value

    def test_yield_bare_signal_shorthand(self):
        eng = Engine()
        sig = Signal()
        sig.trigger("ok")

        def prog():
            value = yield sig
            return value

        proc = Process(eng, prog())
        eng.run()
        assert proc.done.value == "ok"


class TestProcessLifecycle:
    def test_done_signal_carries_return_value(self):
        eng = Engine()

        def prog():
            yield Hold(1.0)
            return {"answer": 42}

        proc = Process(eng, prog())
        eng.run()
        assert proc.done.value == {"answer": 42}

    def test_chained_processes_via_done(self):
        eng = Engine()
        order = []

        def first():
            yield Hold(1.0)
            order.append("first")
            return "from-first"

        def second(first_proc):
            value = yield WaitSignal(first_proc.done)
            order.append(f"second-got-{value}")

        p1 = Process(eng, first())
        Process(eng, second(p1))
        eng.run()
        assert order == ["first", "second-got-from-first"]

    def test_failing_process_raises_wrapped(self):
        eng = Engine()

        def prog():
            yield Hold(1.0)
            raise ValueError("boom")

        Process(eng, prog(), name="bad-rank")
        with pytest.raises(ProcessFailure, match="bad-rank"):
            eng.run()

    def test_unknown_command_raises(self):
        eng = Engine()

        def prog():
            yield "not-a-command"

        Process(eng, prog(), name="weird")
        with pytest.raises(ProcessFailure, match="unknown command"):
            eng.run()

    def test_blocked_on_reports_wait_reason(self):
        eng = Engine()
        sig = Signal("never")

        def prog():
            yield WaitSignal(sig)

        proc = Process(eng, prog())
        eng.run()
        assert not proc.finished
        assert "never" in proc.blocked_on


class TestRunProcesses:
    def test_returns_name_to_value_map(self):
        eng = Engine()

        def prog(v):
            yield Hold(1.0)
            return v

        results = run_processes(eng, [("a", prog(1)), ("b", prog(2))])
        assert results == {"a": 1, "b": 2}

    def test_deadlock_detected_and_reported(self):
        eng = Engine()
        sig = Signal("orphan")

        def stuck():
            yield WaitSignal(sig)

        with pytest.raises(DeadlockError, match="orphan"):
            run_processes(eng, [("stuck", stuck())])

    def test_empty_generator_finishes_immediately(self):
        eng = Engine()

        def empty():
            return
            yield  # pragma: no cover

        results = run_processes(eng, [("e", empty())])
        assert results == {"e": None}
