"""Columnar trace storage: losslessness, byte-identity, scaling hooks.

The columnar layout is only allowed to exist because it is
*indistinguishable* from the record-object path: same records back,
same JSON bytes, same compile tape, same makespans, same balance
reports.  These tests pin every one of those contracts, with
hypothesis driving the codec round-trips over adversarial streams
(wildcard receives, per-burst β overrides, unicode phase labels).
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app, vmpi
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.timemodel import BetaTimeModel
from repro.core.gears import uniform_gear_set
from repro.netsim.compiled import (
    compile_columnar_world,
    compile_world,
)
from repro.netsim.platform import MYRINET_LIKE
from repro.netsim.simulator import MpiSimulator
from repro.traces.columnar import (
    BYTES_PER_EVENT,
    ColumnarTrace,
    ColumnarTraceBuilder,
)
from repro.traces.jsonio import dumps_trace, loads_trace
from repro.traces.prv import ColumnarPrv, parse_prv, write_prv
from repro.traces.records import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_OPS,
    CollectiveRecord,
)
from repro.traces.trace import Trace
from repro.traces.transform import scale_compute

MODEL = BetaTimeModel(fmax=2.3, beta=0.5)

NPROC = 4

phase_labels = st.sampled_from(["", "solve-x", "smooth-l0", "相位", "a b c"])


@st.composite
def stream_records(draw):
    """One rank's record list: structurally valid, not necessarily
    runnable (codec round-trips don't replay)."""
    records = []
    n = draw(st.integers(0, 8))
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["compute", "send", "recv", "isend", "irecv", "wait",
             "waitall", "collective", "marker"]
        ))
        if kind == "compute":
            records.append(vmpi.compute(
                draw(st.floats(0.0, 100.0, allow_nan=False)),
                phase=draw(phase_labels),
                beta=draw(st.one_of(st.none(), st.floats(0.0, 1.0))),
            ))
        elif kind == "send":
            records.append(vmpi.send(
                draw(st.integers(0, NPROC - 1)),
                draw(st.integers(0, 1_000_000)),
                tag=draw(st.integers(0, 15)),
            ))
        elif kind == "recv":
            records.append(vmpi.recv(
                src=draw(st.sampled_from([ANY_SOURCE, 0, 1, 2, 3])),
                tag=draw(st.sampled_from([ANY_TAG, 0, 1, 7])),
            ))
        elif kind == "isend":
            records.append(vmpi.isend(
                draw(st.integers(0, NPROC - 1)),
                draw(st.integers(0, 100_000)),
                tag=draw(st.integers(0, 15)),
                request=draw(st.integers(0, 30)),
            ))
        elif kind == "irecv":
            records.append(vmpi.irecv(
                src=draw(st.sampled_from([ANY_SOURCE, 0, 1, 2, 3])),
                tag=draw(st.sampled_from([ANY_TAG, 0, 3])),
                request=draw(st.integers(0, 30)),
            ))
        elif kind == "wait":
            records.append(vmpi.wait(draw(st.integers(0, 30))))
        elif kind == "waitall":
            records.append(vmpi.waitall(
                draw(st.lists(st.integers(0, 30), max_size=5))
            ))
        elif kind == "collective":
            records.append(CollectiveRecord(
                draw(st.sampled_from(COLLECTIVE_OPS)),
                nbytes=draw(st.integers(0, 1_000_000)),
                root=draw(st.integers(0, NPROC - 1)),
            ))
        else:
            records.append(vmpi.marker(
                draw(phase_labels), iteration=draw(st.integers(-1, 10))
            ))
    return records


def record_trace(streams):
    trace = Trace(NPROC, meta={"name": "fuzz", "nproc": NPROC})
    for rank, records in enumerate(streams):
        trace.streams[rank].records = list(records)
    return trace


class TestLosslessRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(streams=st.lists(
        stream_records(), min_size=NPROC, max_size=NPROC
    ))
    def test_records_survive_columnarisation(self, streams):
        trace = record_trace(streams)
        ct = ColumnarTrace.from_trace(trace)
        back = ct.to_trace()
        for rank in range(NPROC):
            assert back[rank].records == trace[rank].records
        assert back.meta == trace.meta
        assert ct.n_events == sum(len(s) for s in streams)

    @settings(max_examples=50, deadline=None)
    @given(streams=st.lists(
        stream_records(), min_size=NPROC, max_size=NPROC
    ))
    def test_jsonio_bytes_and_columnar_load(self, streams):
        trace = record_trace(streams)
        ct = ColumnarTrace.from_trace(trace)
        text_rec = dumps_trace(trace)
        text_col = dumps_trace(ct)
        assert text_rec == text_col  # byte-identical serialisation
        loaded_col = loads_trace(text_rec, columnar=True)
        assert isinstance(loaded_col, ColumnarTrace)
        loaded_rec = loads_trace(text_rec)
        for rank in range(NPROC):
            assert (
                loaded_col.records_of(rank) == loaded_rec[rank].records
            )
        # and writing the columnar load reproduces the file again
        assert dumps_trace(loaded_col) == text_rec

    @settings(max_examples=25, deadline=None)
    @given(streams=st.lists(
        stream_records(), min_size=NPROC, max_size=NPROC
    ))
    def test_analyses_agree(self, streams):
        trace = record_trace(streams)
        ct = ColumnarTrace.from_trace(trace)
        for rank in range(NPROC):
            assert ct[rank].compute_time() == trace[rank].compute_time()
            assert (
                ct[rank].compute_time_by_phase()
                == trace[rank].compute_time_by_phase()
            )
            assert ct[rank].bytes_sent() == trace[rank].bytes_sent()


class TestBuilder:
    def test_out_of_order_ranks_stable_sorted(self):
        b = ColumnarTraceBuilder(2)
        b.compute(1, 0.5, phase="late")
        b.compute(0, 0.25)
        b.marker(1, "iter", iteration=0)
        ct = b.build()
        assert [r.kind for r in ct.records_of(1)] == ["compute", "marker"]
        assert ct.records_of(0)[0].duration == 0.25

    def test_rank_out_of_range(self):
        b = ColumnarTraceBuilder(2)
        with pytest.raises(ValueError, match="out of range"):
            b.compute(2, 0.1)

    def test_validation_mirrors_records(self):
        b = ColumnarTraceBuilder(2)
        with pytest.raises(ValueError, match="duration"):
            b.compute(0, -1.0)
        with pytest.raises(ValueError, match="beta"):
            b.compute(0, 1.0, beta=1.5)
        with pytest.raises(ValueError, match="nbytes"):
            b.send(0, 1, -4)
        with pytest.raises(ValueError, match="collective"):
            b.collective(0, "alltoallw")

    def test_append_dict_rejects_unknown_fields(self):
        b = ColumnarTraceBuilder(1)
        with pytest.raises(ValueError, match="unexpected fields"):
            b.append_dict(0, {"kind": "wait", "request": 1, "bogus": 2})
        with pytest.raises(ValueError, match="missing field"):
            b.append_dict(0, {"kind": "send", "dst": 0})
        with pytest.raises(ValueError, match="unknown record kind"):
            b.append_dict(0, {"kind": "sendrecv"})

    def test_bytes_per_event_accounting(self):
        app = build_app("CG-8", iterations=2)
        ct = app.columnar_trace()
        overhead = (8 + 1) * 8 + ct.reqpool.nbytes  # offsets + waitall pool
        assert ct.nbytes() == ct.n_events * BYTES_PER_EVENT + overhead


class TestValidateParity:
    def test_valid_trace_passes_both(self, small_trace):
        ct = ColumnarTrace.from_trace(small_trace)
        small_trace.validate()
        ct.validate()  # must not raise either

    @pytest.mark.parametrize("breaker, message", [
        (lambda b: b.send(0, 5, 10), "out of range"),
        (lambda b: b.send(0, 0, 10), "self-send"),
        (lambda b: b.recv(0, src=0), "self-recv"),
        (lambda b: b.isend(0, 1, 8, request=1), "never waited"),
        (lambda b: b.wait(0, 9), "unknown or already-completed"),
    ])
    def test_structural_errors(self, breaker, message):
        b = ColumnarTraceBuilder(2)
        breaker(b)
        with pytest.raises(ValueError, match=message):
            b.build().validate()

    def test_request_reuse_detected(self):
        b = ColumnarTraceBuilder(2)
        b.isend(0, 1, 8, request=3)
        b.isend(0, 1, 8, request=3)
        with pytest.raises(ValueError, match="reused before wait"):
            b.build().validate()

    def test_collective_count_mismatch(self):
        b = ColumnarTraceBuilder(2)
        b.collective(0, "barrier")
        with pytest.raises(ValueError, match="disagree on collective count"):
            b.build().validate()


APP_SPECS = [
    "BT-MZ-16", "CG-16", "MG-16", "IS-16", "SPECFEM3D-16", "WRF-16",
    "PEPC-16",
]


class TestEmitterEquivalence:
    """emit_rank ≡ rank_program ≡ DES-recorded trace, per family."""

    @pytest.mark.parametrize("spec", APP_SPECS)
    def test_columnar_trace_matches_recorded(self, spec):
        app = build_app(spec, iterations=2)
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        recorded = balancer.trace_app(app)
        ct = balancer.trace_app(app, columnar=True)
        assert isinstance(ct, ColumnarTrace)
        assert ct.meta == recorded.meta
        for rank in range(app.nproc):
            assert ct.records_of(rank) == recorded[rank].records

    def test_synthetic_matches_recorded(self):
        from repro.apps.synthetic import build_synthetic

        app = build_synthetic(
            nproc=8, target_lb=0.7, target_pe=0.5,
            shape="wave", pattern="mixed", phases=2,
        )
        assert (
            app.columnar_trace().to_trace()[3].records
            == list(app.rank_program(3))
        )


class TestCompiledIdentity:
    """One compile core: both storage paths yield the same tape."""

    @pytest.mark.parametrize("spec", ["CG-16", "BT-MZ-16", "PEPC-16"])
    def test_tape_and_makespan_identical(self, spec):
        app = build_app(spec, iterations=2)
        p_rec = compile_world(app.programs(), MYRINET_LIKE, MODEL)
        p_col = compile_columnar_world(app.columnar_trace(), MYRINET_LIKE, MODEL)
        assert p_rec.instrs == p_col.instrs
        assert p_rec._dur == p_col._dur
        assert p_rec._beta == p_col._beta
        assert p_rec._wire_eager == p_col._wire_eager
        assert p_rec._wire_rdv == p_col._wire_rdv
        assert p_rec._coll_costs == p_col._coll_costs
        freqs = [1.8 + 0.05 * (r % 5) for r in range(app.nproc)]
        a = p_rec.evaluate(freqs)
        b = p_col.evaluate(freqs)
        assert a.execution_time == b.execution_time
        assert np.array_equal(a.compute_times, b.compute_times)
        assert np.array_equal(a.comm_times, b.comm_times)
        assert np.array_equal(a.end_times, b.end_times)

    def test_columnar_program_cross_validates_against_des(self):
        app = build_app("WRF-16", iterations=2)
        program = compile_columnar_world(
            app.columnar_trace(), MYRINET_LIKE, MODEL
        )
        program.assert_equivalent([2.0] * 16)  # raises on any divergence

    def test_engine_compiles_columnar_trace_with_cache(self):
        from repro.netsim.compiled import CompiledReplayEngine

        app = build_app("CG-16", iterations=2)
        ct = app.columnar_trace()
        engine = CompiledReplayEngine(MYRINET_LIKE, MODEL)
        first = engine.compile_trace(ct)
        assert engine.compile_trace(ct) is first  # cached on the trace
        result = engine.run_trace(ct, 2.0)
        assert result.engine == "compiled"


class TestBalanceReportIdentity:
    @pytest.mark.parametrize("engine", ["auto", "des", "compiled"])
    def test_report_json_byte_identical(self, engine):
        app = build_app("CG-16", iterations=2)
        r_rec = PowerAwareLoadBalancer(
            uniform_gear_set(6), engine=engine
        ).balance_app(app)
        r_col = PowerAwareLoadBalancer(
            uniform_gear_set(6), engine=engine
        ).balance_app(app, columnar=True)
        assert r_rec.to_json() == r_col.to_json()


class TestScaleCompute:
    def test_columnar_scaling_bit_identical(self, small_trace):
        ct = ColumnarTrace.from_trace(small_trace)
        freqs = [1.2 + 0.1 * (r % 4) for r in range(small_trace.nproc)]
        scaled_rec = scale_compute(small_trace, freqs, MODEL)
        scaled_col = scale_compute(ct, freqs, MODEL)
        assert isinstance(scaled_col, ColumnarTrace)
        assert scaled_col.meta == scaled_rec.meta
        for rank in range(small_trace.nproc):
            assert (
                scaled_col.records_of(rank) == scaled_rec[rank].records
            )

    def test_beta_override_honoured_then_dropped(self):
        trace = Trace(1)
        trace[0].append(vmpi.compute(1.0, beta=0.25))
        trace[0].append(vmpi.compute(0.0, beta=0.75))  # zero: untouched
        ct = ColumnarTrace.from_trace(trace)
        out = scale_compute(ct, 1.15, MODEL)
        burst, untouched = out.records_of(0)
        assert burst.duration == 1.0 * MODEL.ratio(1.15, 0.25)
        assert burst.beta is None
        assert untouched.beta == 0.75


class TestPrvColumnar:
    @pytest.fixture()
    def prv_text(self):
        app = build_app("CG-8", iterations=2)
        result = MpiSimulator().run(app.programs(), record_intervals=True)
        buf = io.StringIO()
        write_prv(result, buf)
        return buf.getvalue()

    def test_parse_modes_agree(self, prv_text):
        rec = parse_prv(io.StringIO(prv_text))
        col = parse_prv(io.StringIO(prv_text), columnar=True)
        assert isinstance(col, ColumnarPrv)
        assert col.nproc == rec.nproc
        assert col.duration == rec.duration
        back = col.to_prv_trace()
        assert back.intervals == rec.intervals
        for rank in range(rec.nproc):
            for kind in ("compute", "send", "recv", "wait", "collective"):
                assert col.state_time(rank, kind) == rec.state_time(
                    rank, kind
                )

    def test_round_trip_through_columns(self, prv_text):
        rec = parse_prv(io.StringIO(prv_text))
        again = ColumnarPrv.from_prv_trace(rec).to_prv_trace()
        assert again.intervals == rec.intervals
        assert again.duration == rec.duration


class TestCliColumnar:
    def test_trace_command_writes_identical_file(self, tmp_path, capsys):
        from repro.cli import main

        rec_path = tmp_path / "rec.jsonl"
        col_path = tmp_path / "col.jsonl"
        assert main(["trace", "CG-8", "-o", str(rec_path)]) == 0
        assert main(
            ["trace", "CG-8", "-o", str(col_path), "--columnar"]
        ) == 0
        assert rec_path.read_bytes() == col_path.read_bytes()
