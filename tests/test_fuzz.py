"""Property-based fuzzing of the simulator's MPI semantics.

Generates random — but well-formed — communication worlds and asserts
the invariants that must hold for *any* of them: completion (no
deadlock), determinism, time conservation, and monotonicity under
frequency scaling.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import vmpi
from repro.core.timemodel import BetaTimeModel
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.traces.trace import Trace

PLATFORM = PlatformConfig(
    latency=1e-5, bandwidth=1e8, eager_threshold=4096,
    send_overhead=0.0, recv_overhead=0.0,
    cpus_per_node=2, intra_node_speedup=2.0,
)


@st.composite
def comm_worlds(draw):
    """A random world: compute bursts + matched nonblocking traffic +
    an aligned collective schedule.  Deadlock-free by construction."""
    nproc = draw(st.integers(2, 5))
    nmsg = draw(st.integers(0, 12))
    messages = [
        (
            draw(st.integers(0, nproc - 1)),  # src
            draw(st.integers(0, nproc - 2)),  # dst (shifted around src)
            draw(st.integers(0, 20_000)),  # nbytes: spans eager/rendezvous
        )
        for _ in range(nmsg)
    ]
    burst = [
        [draw(st.floats(0.0, 0.01)) for _ in range(2)] for _ in range(nproc)
    ]
    colls = draw(
        st.lists(
            st.sampled_from(["barrier", "allreduce", "alltoall", "bcast"]),
            max_size=3,
        )
    )
    return nproc, messages, burst, colls


def build_programs(nproc, messages, bursts, colls):
    programs = [[] for _ in range(nproc)]
    requests = [[] for _ in range(nproc)]
    next_req = [0] * nproc
    for rank in range(nproc):
        programs[rank].append(vmpi.compute(bursts[rank][0]))
    for i, (src, dst_raw, nbytes) in enumerate(messages):
        dst = (src + 1 + dst_raw) % nproc  # never a self-message
        tag = i  # unique tag: deterministic matching
        req_s = next_req[src]
        next_req[src] += 1
        programs[src].append(vmpi.isend(dst, nbytes, tag=tag, request=req_s))
        requests[src].append(req_s)
        req_r = next_req[dst]
        next_req[dst] += 1
        programs[dst].append(vmpi.irecv(src, tag=tag, request=req_r))
        requests[dst].append(req_r)
    for rank in range(nproc):
        if requests[rank]:
            programs[rank].append(vmpi.waitall(requests[rank]))
        for op in colls:
            programs[rank].append(
                vmpi.barrier() if op == "barrier"
                else getattr(vmpi, op)(512)
            )
        programs[rank].append(vmpi.compute(bursts[rank][1]))
    return programs


class TestFuzzedWorlds:
    @settings(max_examples=60, deadline=None)
    @given(world=comm_worlds())
    def test_completes_and_conserves_time(self, world):
        nproc, messages, bursts, colls = world
        programs = build_programs(nproc, messages, bursts, colls)
        trace = Trace.from_streams([list(p) for p in programs])
        trace.validate()

        sim = MpiSimulator(platform=PLATFORM)
        result = sim.run_trace(trace)

        # compute time conservation: exactly the generated bursts
        expected = np.array([sum(b) for b in bursts])
        assert result.compute_times == pytest.approx(expected)
        # nobody ends before their own work, nobody after the app end
        assert (result.end_times <= result.execution_time + 1e-12).all()
        assert (result.end_times >= expected - 1e-12).all()
        # comm time is never negative and bounded by the run
        assert (result.comm_times >= -1e-12).all()
        assert (result.comm_times <= result.execution_time + 1e-12).all()

    @settings(max_examples=30, deadline=None)
    @given(world=comm_worlds())
    def test_deterministic(self, world):
        nproc, messages, bursts, colls = world
        sim = MpiSimulator(platform=PLATFORM)
        r1 = sim.run(build_programs(nproc, messages, bursts, colls))
        r2 = sim.run(build_programs(nproc, messages, bursts, colls))
        assert r1.execution_time == r2.execution_time
        assert r1.events == r2.events
        assert r1.comm_times.tolist() == r2.comm_times.tolist()

    @settings(max_examples=30, deadline=None)
    @given(world=comm_worlds(), f=st.floats(0.4, 2.3))
    def test_slower_cpus_never_speed_the_run_up(self, world, f):
        nproc, messages, bursts, colls = world
        sim = MpiSimulator(
            platform=PLATFORM, time_model=BetaTimeModel(fmax=2.3, beta=0.5)
        )
        nominal = sim.run(build_programs(nproc, messages, bursts, colls))
        slowed = sim.run(
            build_programs(nproc, messages, bursts, colls), frequencies=f
        )
        assert slowed.execution_time >= nominal.execution_time - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(world=comm_worlds())
    def test_replay_of_recording_matches(self, world):
        nproc, messages, bursts, colls = world
        sim = MpiSimulator(platform=PLATFORM)
        live = sim.run(
            build_programs(nproc, messages, bursts, colls), record_trace=True
        )
        replay = sim.run_trace(live.trace)
        assert replay.execution_time == pytest.approx(live.execution_time)
        assert replay.events == live.events
