"""Determinism (DT) source lint: bit-identity hazard detection.

Unit-tests the AST rules over crafted snippets, the kernel-scope
gating of DT003, the SARIF line anchoring, and — the dogfood test —
that repro's own installed source is DT-clean (the same invariant the
``source-lint`` CI step enforces).
"""

import pathlib
import textwrap

from repro.diagnostics.engine import (
    LintConfig,
    lint_source_paths,
)
from repro.diagnostics.model import Severity
from repro.diagnostics.rules_source import lint_source_text

CONFIG = LintConfig()


def lint(src: str, subject: str = "repro/core/mod.py"):
    return lint_source_text(textwrap.dedent(src), subject, config=CONFIG)


def codes(diags):
    return [d.code for d in diags]


class TestDT001Summation:
    def test_fsum_flagged_anywhere(self):
        diags = lint(
            """
            import math
            total = math.fsum(values)
            """,
            subject="repro/experiments/agg.py",
        )
        assert codes(diags) == ["DT001"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].index == 3  # line number rides in ``index``

    def test_fsum_alias_resolved(self):
        diags = lint(
            """
            from math import fsum as precise_sum
            total = precise_sum(values)
            """
        )
        assert codes(diags) == ["DT001"]

    def test_np_sum_over_durations(self):
        diags = lint(
            """
            import numpy as np
            total = np.sum(trace.duration[mask])
            """
        )
        assert codes(diags) == ["DT001"]
        assert "pairwise" in diags[0].message

    def test_np_sum_over_other_data_allowed(self):
        diags = lint(
            """
            import numpy as np
            total = np.sum(sizes)
            """
        )
        assert diags == []

    def test_method_sum_over_durations(self):
        diags = lint("total = durations[mask].sum()\n")
        assert codes(diags) == ["DT001"]
        assert "tolist()" in diags[0].message

    def test_left_to_right_convention_allowed(self):
        diags = lint("total = sum(seg[mask].tolist())\n")
        assert diags == []


class TestDT002SetIteration:
    def test_for_over_set_literal(self):
        diags = lint(
            """
            for item in {1, 2, 3}:
                acc += item
            """
        )
        assert codes(diags) == ["DT002"]
        assert diags[0].severity is Severity.WARNING

    def test_comprehension_over_set_call(self):
        diags = lint("out = [f(x) for x in set(items)]\n")
        assert codes(diags) == ["DT002"]

    def test_list_of_set(self):
        diags = lint("out = list(set(items))\n")
        assert codes(diags) == ["DT002"]

    def test_sorted_launders_the_set(self):
        assert lint("for x in sorted({3, 1, 2}):\n    pass\n") == []
        assert lint("out = [f(x) for x in sorted(set(items))]\n") == []

    def test_membership_is_not_iteration(self):
        assert lint("ok = x in {1, 2, 3}\n") == []


class TestDT003KernelPurity:
    def test_wall_clock_in_kernel(self):
        diags = lint(
            """
            import time
            stamp = time.time()
            """,
            subject="repro/netsim/engine.py",
        )
        assert codes(diags) == ["DT003"]
        assert diags[0].severity is Severity.ERROR

    def test_unseeded_numpy_random_in_kernel(self):
        diags = lint(
            """
            import numpy as np
            jitter = np.random.uniform(0, 1)
            """,
            subject="repro/traces/gen.py",
        )
        assert codes(diags) == ["DT003"]

    def test_random_module_alias(self):
        diags = lint(
            """
            import random as rnd
            pick = rnd.choice(items)
            """,
            subject="repro/core/pick.py",
        )
        assert codes(diags) == ["DT003"]

    def test_perf_counter_allowed(self):
        diags = lint(
            """
            import time
            t0 = time.perf_counter()
            """,
            subject="repro/netsim/sim.py",
        )
        assert diags == []

    def test_default_rng_allowed(self):
        diags = lint(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            """,
            subject="repro/core/seeded.py",
        )
        assert diags == []

    def test_non_kernel_files_exempt(self):
        diags = lint(
            """
            import time
            stamp = time.time()
            """,
            subject="repro/service/app.py",
        )
        assert diags == []


class TestDT004MappedWrites:
    def test_memmap_default_mode_flagged(self):
        diags = lint(
            """
            import numpy as np
            cols = np.memmap("trace.bin", dtype="f8")
            """,
            subject="repro/netsim/loader.py",
        )
        assert codes(diags) == ["DT004"]
        assert diags[0].severity is Severity.ERROR

    def test_memmap_writable_mode_flagged(self):
        diags = lint(
            """
            import numpy as np
            cols = np.memmap("trace.bin", "f8", "r+")
            """,
            subject="repro/traces/loader.py",
        )
        assert codes(diags) == ["DT004"]

    def test_memmap_readonly_allowed(self):
        diags = lint(
            """
            import numpy as np
            a = np.memmap("trace.bin", dtype="f8", mode="r")
            b = np.memmap("trace.bin", "f8", "r")
            """,
            subject="repro/traces/loader.py",
        )
        assert diags == []

    def test_mmap_default_access_flagged(self):
        diags = lint(
            """
            import mmap
            m = mmap.mmap(fd, 0)
            """,
            subject="repro/core/maps.py",
        )
        assert codes(diags) == ["DT004"]

    def test_mmap_write_access_flagged(self):
        diags = lint(
            """
            import mmap
            m = mmap.mmap(fd, 0, access=mmap.ACCESS_WRITE)
            """,
            subject="repro/core/maps.py",
        )
        assert codes(diags) == ["DT004"]

    def test_mmap_read_access_allowed_through_alias(self):
        # the store's own idiom: `import mmap as _mmap`
        diags = lint(
            """
            import mmap as _mmap
            m = _mmap.mmap(fd, 0, access=_mmap.ACCESS_READ)
            """,
            subject="repro/traces/colstore.py",
        )
        assert diags == []

    def test_non_kernel_files_exempt(self):
        diags = lint(
            """
            import mmap
            m = mmap.mmap(fd, 0)
            """,
            subject="repro/service/cachefile.py",
        )
        assert diags == []


class TestEngineAndFormats:
    def test_syntax_error_becomes_finding(self):
        diags = lint_source_text(
            "def broken(:\n", "repro/core/broken.py", config=CONFIG
        )
        assert codes(diags) == ["DX000"]
        assert diags[0].severity is Severity.ERROR
        assert "cannot parse" in diags[0].message

    def test_lint_source_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import math\nmath.fsum([1.0])\n")
        (pkg / "good.py").write_text("total = sum([1.0])\n")
        diags = lint_source_paths([tmp_path], CONFIG, root=tmp_path)
        assert codes(diags) == ["DT001"]
        assert diags[0].subject == "repro/core/bad.py"

    def test_selection_covers_dt_prefix(self):
        diags = lint_source_text(
            "import math\nx = math.fsum(v)\nfor i in {1, 2}:\n    pass\n",
            "repro/core/m.py",
            config=LintConfig(select=("DT002",)),
        )
        assert codes(diags) == ["DT002"]

    def test_sarif_carries_line_region(self):
        import json

        from repro.diagnostics.sarif import to_sarif_json

        diags = lint(
            """
            import math
            total = math.fsum(values)
            """
        )
        sarif = json.loads(to_sarif_json(diags))
        result = sarif["runs"][0]["results"][0]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "repro/core/mod.py"
        assert physical["region"]["startLine"] == 3

    def test_repro_package_is_dt_clean(self):
        """Dogfood: the invariant the source-lint CI step enforces."""
        import repro

        package_root = pathlib.Path(repro.__file__).parent
        diags = lint_source_paths(
            [package_root], CONFIG, root=package_root.parent
        )
        assert diags == [], [str(d) for d in diags]
