"""Tests for the simulation service (``repro serve``).

Integration tests drive the real asyncio HTTP stack through
:class:`~repro.service.client.ServiceThread`; concurrency behaviour
(backpressure, coalescing, graceful drain) is made deterministic by
injecting a *gated* thread executor whose jobs block until the test
opens a gate — no sleeps-as-synchronization, no timing flakes.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import ServiceConfig, ServiceThread
from repro.service.workers import execute_balance

#: The acceptance-criteria request: BT-MZ-32 / uniform:6 / MAX.
SPEC = {
    "app": "BT-MZ-32",
    "gears": "uniform:6",
    "algorithm": "max",
    "beta": 0.5,
    "iterations": 3,
    "base_compute": 0.02,
}


class GatedExecutor(ThreadPoolExecutor):
    """Executor whose jobs wait for :attr:`gate` before running."""

    def __init__(self, max_workers: int = 4):
        super().__init__(max_workers=max_workers)
        self.gate = threading.Event()
        self.simulations = 0
        self._lock = threading.Lock()

    def submit(self, fn, *args, **kwargs):
        def gated(*a, **kw):
            assert self.gate.wait(timeout=60), "test gate never opened"
            with self._lock:
                self.simulations += 1
            return fn(*a, **kw)

        return super().submit(gated, *args, **kwargs)


def make_service(tmp_path, executor=None, **overrides):
    overrides.setdefault("workers", 2)
    config = ServiceConfig(
        port=0,
        cache_dir=str(tmp_path / "service-cache"),
        **overrides,
    )
    return ServiceThread(config, executor=executor or ThreadPoolExecutor(2))


def metric_value(metrics_text: str, name: str) -> float:
    """The current value of an unlabelled counter/gauge in a scrape."""
    for line in metrics_text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    return 0.0


def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached in time")


# ----------------------------------------------------------------------
# Plumbing endpoints
# ----------------------------------------------------------------------

class TestPlumbing:
    def test_healthz(self, tmp_path):
        with make_service(tmp_path) as svc:
            health = svc.client.healthz()
            assert health["status"] == "ok"
            assert health["workers"]["total"] == 2
            assert health["queue"]["depth"] == 0
            assert health["jobs_pending"] == 0

    def test_unknown_route_404_and_wrong_method_405(self, tmp_path):
        with make_service(tmp_path) as svc:
            assert svc.client.request("GET", "/nope").status == 404
            r = svc.client.request("GET", "/v1/balance")
            assert r.status == 405
            assert r.json()["error"]["code"] == "method-not-allowed"

    def test_request_id_echoed(self, tmp_path):
        with make_service(tmp_path) as svc:
            r = svc.client.request(
                "GET", "/healthz", headers={"X-Request-Id": "abc-123"}
            )
            assert r.headers["X-Request-Id"] == "abc-123"
            # generated when absent
            r2 = svc.client.request("GET", "/healthz")
            assert r2.headers["X-Request-Id"]

    def test_experiment_index(self, tmp_path):
        from repro.experiments import EXPERIMENT_IDS

        with make_service(tmp_path) as svc:
            r = svc.client.request("GET", "/v1/experiments")
            assert r.status == 200
            assert r.json()["experiments"] == list(EXPERIMENT_IDS)


# ----------------------------------------------------------------------
# Balance round-trip + caching
# ----------------------------------------------------------------------

class TestBalance:
    def test_round_trip_byte_equal_to_direct_balancer(self, tmp_path):
        """The wire body is byte-identical to the offline pipeline."""
        report, _runner = execute_balance(dict(SPEC))
        expected = (
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode()
        with make_service(tmp_path) as svc:
            r = svc.client.balance(**SPEC)
            assert r.status == 200
            assert r.headers["X-Cache"] == "miss"
            assert r.body == expected

    def test_repeat_request_hits_cache(self, tmp_path):
        with make_service(tmp_path) as svc:
            first = svc.client.balance(**SPEC)
            second = svc.client.balance(**SPEC)
            assert first.headers["X-Cache"] == "miss"
            assert second.headers["X-Cache"] == "hit"
            assert second.body == first.body
            metrics = svc.client.metrics()
            assert (
                'repro_service_cache_fast_hits_total{kind="balance"} 1'
                in metrics
            )

    def test_defaults_applied(self, tmp_path):
        # only "app" is required; everything else has server defaults
        with make_service(tmp_path) as svc:
            r = svc.client.balance(app="CG-16", iterations=2)
            assert r.status == 200
            body = r.json()
            assert body["application"] == "CG-16"
            assert body["algorithm"] == "MAX"
            assert body["gear_set"] == "uniform-6"

    def test_custom_gear_list(self, tmp_path):
        with make_service(tmp_path) as svc:
            r = svc.client.balance(
                app="CG-16", iterations=2,
                gears=[[1.2, 0.9], [1.8, 1.0], [2.3, 1.1]],
            )
            assert r.status == 200
            assert r.json()["gear_set"] == "custom[3]"

    def test_engine_selection_is_body_identical(self, tmp_path):
        # 'des' and 'auto' change *how* a miss is computed, never the
        # result — and the selector must not split the cache identity,
        # so the second request is a fast hit of the first.
        with make_service(tmp_path) as svc:
            des = svc.client.balance(**SPEC, engine="des")
            auto = svc.client.balance(**SPEC, engine="auto")
            assert des.status == auto.status == 200
            assert auto.body == des.body
            assert auto.headers["X-Cache"] == "hit"

    def test_engine_counters_scraped(self, tmp_path):
        with make_service(tmp_path) as svc:
            assert svc.client.balance(**SPEC).status == 200
            metrics = svc.client.metrics()
            assert "repro_engine_compiled_runs_total" in metrics
            assert "repro_engine_auto_fallbacks_total" in metrics
            assert "repro_engine_compiled_evals_per_second" in metrics


# ----------------------------------------------------------------------
# Batched balance ("candidates" body)
# ----------------------------------------------------------------------

class TestBalanceBatch:
    CANDIDATES = [
        {"gears": "uniform:3"},
        {"gears": "uniform:6", "algorithm": "avg"},
    ]

    def test_each_result_byte_identical_to_scalar(self, tmp_path):
        """results[i] matches the scalar /v1/balance body for cell i."""
        with make_service(tmp_path) as svc:
            batch = svc.client.balance(**SPEC, candidates=self.CANDIDATES)
            assert batch.status == 200
            assert batch.headers["X-Cache"] == "miss"
            body = batch.json()
            assert body["count"] == len(self.CANDIDATES)
            for cand, got in zip(self.CANDIDATES, body["results"]):
                scalar = svc.client.balance(**{**SPEC, **cand})
                assert scalar.status == 200
                # the batch warmed the per-candidate report blobs, so
                # the scalar request is a front-end fast hit
                assert scalar.headers["X-Cache"] == "hit"
                assert json.dumps(got, sort_keys=True) == json.dumps(
                    scalar.json(), sort_keys=True
                )

    def test_repeat_batch_hits_cache(self, tmp_path):
        with make_service(tmp_path) as svc:
            first = svc.client.balance(**SPEC, candidates=self.CANDIDATES)
            second = svc.client.balance(**SPEC, candidates=self.CANDIDATES)
            assert first.headers["X-Cache"] == "miss"
            assert second.headers["X-Cache"] == "hit"
            assert second.body == first.body
            metrics = svc.client.metrics()
            assert (
                'repro_service_cache_fast_hits_total{kind="balance_batch"} 1'
                in metrics
            )

    def test_scalar_warm_cache_serves_batch_candidates(self, tmp_path):
        # scalar traffic first: the batch finds every cell in the shared
        # report blobs and prices nothing (engine counters are process-
        # cumulative, so assert on the scrape-to-scrape delta)
        with make_service(tmp_path) as svc:
            for cand in self.CANDIDATES:
                assert svc.client.balance(**{**SPEC, **cand}).status == 200
            before = metric_value(
                svc.client.metrics(), "repro_engine_batch_batches_total"
            )
            batch = svc.client.balance(**SPEC, candidates=self.CANDIDATES)
            assert batch.status == 200
            after = metric_value(
                svc.client.metrics(), "repro_engine_batch_batches_total"
            )
            assert after == before

    def test_batch_counters_scraped(self, tmp_path):
        with make_service(tmp_path) as svc:
            before = svc.client.metrics()
            assert svc.client.balance(
                **SPEC, candidates=self.CANDIDATES
            ).status == 200
            after = svc.client.metrics()
            for name, least in (
                ("repro_engine_batch_batches_total", 1),
                ("repro_engine_batch_candidates_total",
                 len(self.CANDIDATES)),
            ):
                assert (
                    metric_value(after, name) - metric_value(before, name)
                    >= least
                )
            fallback = "repro_engine_batch_fallback_candidates_total"
            assert metric_value(after, fallback) == metric_value(
                before, fallback
            )

    def test_async_batch_job(self, tmp_path):
        with make_service(tmp_path) as svc:
            r = svc.client.balance(
                **SPEC, candidates=self.CANDIDATES, **{"async": True}
            )
            assert r.status == 202
            job = svc.client.wait_job(r.json()["job"]["id"])
            assert job["status"] == "done"
            assert job["result"]["count"] == len(self.CANDIDATES)


class TestBalanceBatchValidation:
    @pytest.fixture(scope="class")
    def svc(self, tmp_path_factory):
        with make_service(tmp_path_factory.mktemp("svc-batch")) as service:
            yield service

    def test_candidates_must_be_a_nonempty_list(self, svc):
        for bad in ([], {"gears": "uniform:3"}, "uniform:3"):
            r = svc.client.balance(**SPEC, candidates=bad)
            assert r.status == 400
            assert "non-empty list" in r.json()["error"]["message"]

    def test_non_object_candidate_rejected(self, svc):
        r = svc.client.balance(**SPEC, candidates=["uniform:3"])
        assert r.status == 400
        assert "candidates[0] must be an object" in (
            r.json()["error"]["message"]
        )

    def test_unknown_candidate_key_rejected(self, svc):
        r = svc.client.balance(
            **SPEC, candidates=[{"gears": "uniform:3", "beta": 0.5}]
        )
        assert r.status == 400
        assert "candidates[0]" in r.json()["error"]["message"]

    def test_bad_candidate_gears_is_labelled(self, svc):
        r = svc.client.balance(
            **SPEC,
            candidates=[{"gears": "uniform:3"}, {"gears": "warp:9"}],
        )
        assert r.status == 400
        assert "candidates[1]" in r.json()["error"]["message"]

    def test_bad_candidate_algorithm_rejected(self, svc):
        r = svc.client.balance(**SPEC, candidates=[{"algorithm": "min"}])
        assert r.status == 400
        assert "'max' or 'avg'" in r.json()["error"]["message"]

    def test_candidate_cap_enforced(self, svc):
        too_many = [{"gears": "uniform:3"}] * 257
        r = svc.client.balance(**SPEC, candidates=too_many)
        assert r.status == 400
        assert "at most 256" in r.json()["error"]["message"]

    def test_lint_gate_covers_every_candidate(self, svc):
        # a 0.4 GHz gear extrapolates the voltage law: GR002 is only a
        # warning, so strict mode is what rejects it — per candidate
        gears = [[0.4, 0.7], [2.3, 1.1]]
        relaxed = svc.client.balance(
            **SPEC, candidates=[{"gears": gears}]
        )
        assert relaxed.status == 200
        strict = svc.client.balance(
            **SPEC, candidates=[{"gears": gears}], strict=True
        )
        assert strict.status == 400
        err = strict.json()["error"]
        assert err["code"] == "lint-rejected"
        codes = {d["code"] for d in err["detail"]["diagnostics"]}
        assert "GR002" in codes


# ----------------------------------------------------------------------
# Validation + lint gate
# ----------------------------------------------------------------------

class TestValidation:
    @pytest.fixture(scope="class")
    def svc(self, tmp_path_factory):
        # validation never reaches a worker; one service for the class
        with make_service(tmp_path_factory.mktemp("svc")) as service:
            yield service

    def test_unknown_field_rejected(self, svc):
        r = svc.client.balance(app="CG-16", bogus=1)
        assert r.status == 400
        err = r.json()["error"]
        assert err["code"] == "invalid-request"
        assert "bogus" in err["message"]

    def test_missing_app_rejected(self, svc):
        r = svc.client.balance(gears="uniform:6")
        assert r.status == 400
        assert "'app' is required" in r.json()["error"]["message"]

    def test_bad_app_name_rejected(self, svc):
        assert svc.client.balance(app="NOT-AN-APP").status == 400

    def test_bad_gear_spec_rejected(self, svc):
        assert svc.client.balance(app="CG-16", gears="warp:9").status == 400

    def test_non_object_body_rejected(self, svc):
        empty = svc.client.request("POST", "/v1/balance")
        assert empty.status == 400  # empty body -> {} -> missing 'app'
        bad = svc.client.request(
            "POST", "/v1/balance", payload=["not", "an", "object"]
        )
        assert bad.status == 400
        assert bad.json()["error"]["code"] == "invalid-request"

    def test_bad_iterations_rejected(self, svc):
        assert svc.client.balance(app="CG-16", iterations=0).status == 400
        assert svc.client.balance(app="CG-16", iterations="six").status == 400

    def test_unknown_engine_rejected(self, svc):
        r = svc.client.balance(app="CG-16", engine="turbo")
        assert r.status == 400
        assert "engine" in r.json()["error"]["message"]

    def test_unphysical_beta_is_lint_rejected(self, svc):
        r = svc.client.balance(app="CG-16", beta=2.0)
        assert r.status == 400
        err = r.json()["error"]
        assert err["code"] == "lint-rejected"
        codes = {d["code"] for d in err["detail"]["diagnostics"]}
        assert "MD001" in codes

    def test_strict_mode_rejects_warnings(self, svc):
        # a 0.4 GHz gear extrapolates the voltage law: GR002 (warning)
        gears = [[0.4, 0.7], [2.3, 1.1]]
        relaxed = svc.client.balance(
            app="CG-16", iterations=2, gears=gears
        )
        assert relaxed.status == 200
        strict = svc.client.balance(
            app="CG-16", iterations=2, gears=gears, strict=True
        )
        assert strict.status == 400
        codes = {
            d["code"]
            for d in strict.json()["error"]["detail"]["diagnostics"]
        }
        assert "GR002" in codes

    def test_unknown_experiment_404(self, svc):
        r = svc.client.experiment("not-a-figure")
        assert r.status == 404
        assert r.json()["error"]["code"] == "not-found"


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------

class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, tmp_path):
        gate = GatedExecutor()
        with make_service(
            tmp_path, executor=gate, queue_limit=2, workers=1
        ) as svc:
            # two async jobs fill the bounded queue (workers are gated)
            for i in (101, 102):
                r = svc.client.balance(
                    app="CG-16", iterations=i, **{"async": True}
                )
                assert r.status == 202
            wait_for(lambda: svc.client.healthz()["queue"]["depth"] == 2)

            burst = svc.client.balance(app="CG-16", iterations=103)
            assert burst.status == 429
            err = burst.json()["error"]
            assert err["code"] == "queue-full"
            assert int(burst.headers["Retry-After"]) >= 1
            assert err["detail"]["depth"] == 2

            metrics = svc.client.metrics()
            assert "repro_service_queue_rejected_total 1" in metrics

            # opening the gate drains the queue; service recovers
            gate.gate.set()
            wait_for(lambda: svc.client.healthz()["queue"]["depth"] == 0)
            ok = svc.client.balance(app="CG-16", iterations=2)
            assert ok.status == 200

    def test_rejected_request_burns_no_worker(self, tmp_path):
        gate = GatedExecutor()
        with make_service(
            tmp_path, executor=gate, queue_limit=1, workers=1
        ) as svc:
            r = svc.client.balance(
                app="CG-16", iterations=111, **{"async": True}
            )
            assert r.status == 202
            wait_for(lambda: svc.client.healthz()["queue"]["depth"] == 1)
            assert svc.client.balance(
                app="CG-16", iterations=112
            ).status == 429
            gate.gate.set()
        assert gate.simulations == 1  # the 429 never reached the pool


# ----------------------------------------------------------------------
# Single-flight coalescing
# ----------------------------------------------------------------------

class TestCoalescing:
    def test_concurrent_identical_requests_run_one_simulation(self, tmp_path):
        gate = GatedExecutor()
        n_clients = 5
        with make_service(tmp_path, executor=gate, queue_limit=8) as svc:
            results = [None] * n_clients

            def fire(i):
                results[i] = svc.client.balance(**SPEC)

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            # exactly one leader is admitted; followers coalesce
            wait_for(
                lambda: svc.client.healthz()["queue"]["depth"] == 1
            )
            wait_for(lambda: svc.app.flight.followers_total == n_clients - 1)
            gate.gate.set()
            for t in threads:
                t.join(timeout=60)

            states = sorted(r.headers["X-Cache"] for r in results)
            assert states == ["coalesced"] * (n_clients - 1) + ["miss"]
            bodies = {r.body for r in results}
            assert len(bodies) == 1  # everyone got the same bytes
            assert all(r.status == 200 for r in results)
            metrics = svc.client.metrics()
            assert (
                f'repro_service_coalesced_total{{kind="balance"}} '
                f"{n_clients - 1}" in metrics
            )
        assert gate.simulations == 1

    def test_different_requests_do_not_coalesce(self, tmp_path):
        gate = GatedExecutor()
        gate.gate.set()  # run freely; this test is about keying only
        with make_service(tmp_path, executor=gate) as svc:
            a = svc.client.balance(app="CG-16", iterations=2)
            b = svc.client.balance(app="CG-16", iterations=3)
            assert a.status == b.status == 200
            assert a.headers["X-Cache"] == b.headers["X-Cache"] == "miss"
        assert gate.simulations == 2


# ----------------------------------------------------------------------
# Async jobs
# ----------------------------------------------------------------------

class TestAsyncJobs:
    def test_job_lifecycle(self, tmp_path):
        with make_service(tmp_path) as svc:
            r = svc.client.balance(**SPEC, **{"async": True})
            assert r.status == 202
            job_ref = r.json()["job"]
            assert job_ref["poll"] == f"/v1/jobs/{job_ref['id']}"
            job = svc.client.wait_job(job_ref["id"])
            assert job["status"] == "done"
            assert job["result"]["application"] == "BT-MZ-32"
            assert job["seconds"] >= 0
            # the async result matches the sync wire format
            sync = svc.client.balance(**SPEC)
            assert sync.headers["X-Cache"] == "hit"
            assert job["result"] == sync.json()

    def test_failed_job_reports_error(self, tmp_path):
        with make_service(tmp_path, queue_limit=1) as svc:
            # lint failures happen at parse time even for async
            r = svc.client.balance(app="CG-16", beta=2.0, **{"async": True})
            assert r.status == 400

    def test_unknown_job_404(self, tmp_path):
        with make_service(tmp_path) as svc:
            assert svc.client.job("balance-999999-abc").status == 404


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------

class TestShutdown:
    def test_drain_finishes_inflight_jobs(self, tmp_path):
        gate = GatedExecutor()
        svc = make_service(tmp_path, executor=gate).start()
        r = svc.client.balance(app="CG-16", iterations=2, **{"async": True})
        assert r.status == 202
        job_id = r.json()["job"]["id"]
        wait_for(lambda: svc.client.healthz()["queue"]["depth"] == 1)

        stopper = threading.Thread(target=svc.stop)
        stopper.start()
        # shutdown must wait for the gated job, not abandon it
        time.sleep(0.1)
        assert stopper.is_alive()
        gate.gate.set()
        stopper.join(timeout=60)
        assert not stopper.is_alive()

        job = svc.app.jobs.get(job_id)
        assert job is not None and job.status == "done"
        assert gate.simulations == 1

    def test_stop_is_idempotent_and_clean_when_idle(self, tmp_path):
        svc = make_service(tmp_path).start()
        assert svc.client.healthz()["status"] == "ok"
        svc.stop()
        svc.stop()


# ----------------------------------------------------------------------
# Experiments over HTTP
# ----------------------------------------------------------------------

class TestExperiments:
    def test_experiment_round_trip_and_cache(self, tmp_path):
        with make_service(tmp_path) as svc:
            r = svc.client.experiment(
                "table_gears", iterations=2, apps=["CG-16"]
            )
            assert r.status == 200
            assert r.headers["X-Cache"] == "miss"
            body = r.json()
            assert body["eid"] == "table_gears"
            assert body["columns"] and body["rows"]
            again = svc.client.experiment(
                "table_gears", iterations=2, apps=["CG-16"]
            )
            assert again.headers["X-Cache"] == "hit"
            assert again.body == r.body


# ----------------------------------------------------------------------
# Metrics exposition format
# ----------------------------------------------------------------------

class TestMetrics:
    def test_scrape_format(self, tmp_path):
        with make_service(tmp_path) as svc:
            svc.client.balance(**SPEC)
            svc.client.balance(**SPEC)
            r = svc.client.request("GET", "/metrics")
            assert r.status == 200
            assert r.headers["Content-Type"].startswith("text/plain")
            text = r.text
        assert text.endswith("\n")
        lines = text.splitlines()
        helps = [ln for ln in lines if ln.startswith("# HELP ")]
        types = [ln for ln in lines if ln.startswith("# TYPE ")]
        assert len(helps) == len(types) >= 10
        assert (
            'repro_service_requests_total{endpoint="balance",'
            'method="POST",status="200"} 2' in lines
        )
        assert 'repro_service_simulations_total{kind="balance"} 1' in lines
        assert "# TYPE repro_service_request_seconds histogram" in text
        bucket_lines = [
            ln for ln in lines
            if ln.startswith("repro_service_request_seconds_bucket")
        ]
        assert any('le="+Inf"' in ln for ln in bucket_lines)
        assert "repro_service_request_seconds_count" in text
        assert "repro_service_queue_limit 16" in lines
        assert "repro_service_result_cache_hits_total" in text
        assert "repro_service_result_cache_corrupt_total 0" in lines
        assert "repro_service_cache_hit_ratio" in text

    def test_unit_metric_primitives(self):
        from repro.service.metrics import MetricsRegistry

        reg = MetricsRegistry()
        c = reg.counter("c_total", "help.", ("op",))
        c.inc(op="x")
        c.inc(2, op="x")
        assert c.value(op="x") == 3
        with pytest.raises(ValueError):
            c.inc(-1, op="x")
        g = reg.gauge("g", "help.", fn=lambda: 7)
        assert g.value() == 7
        with pytest.raises(ValueError):
            g.set(1)
        h = reg.histogram("h_seconds", "help.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        assert h.count() == 2
        text = reg.render()
        assert 'c_total{op="x"} 3' in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_count 2" in text
        with pytest.raises(ValueError):
            reg.gauge("g", "duplicate name.")


# ----------------------------------------------------------------------
# Unit tests: admission controller + single-flight
# ----------------------------------------------------------------------

class TestAdmissionController:
    def test_rejects_beyond_limit(self):
        import asyncio

        from repro.service.errors import QueueFull
        from repro.service.queue import AdmissionController

        async def scenario():
            q = AdmissionController(limit=2, workers=1)
            q.acquire()
            q.acquire()
            with pytest.raises(QueueFull) as exc:
                q.acquire()
            assert exc.value.retry_after >= 1
            assert q.stats()["rejected"] == 1
            q.release(0.5)
            q.acquire()  # slot freed
            q.release(0.5)
            q.release(0.5)
            await q.drain()  # returns immediately at depth 0

        asyncio.run(scenario())

    def test_retry_after_tracks_job_duration(self):
        import asyncio

        from repro.service.queue import AdmissionController

        async def scenario():
            q = AdmissionController(limit=4, workers=1)
            for _ in range(6):
                q.acquire()
                q.release(10.0)  # EMA converges toward 10s jobs
            q.acquire()
            q.acquire()
            # 2 queued jobs at ~10s each on one worker: >= ~15s estimate
            assert q.retry_after() >= 15
            q.release()
            q.release()

        asyncio.run(scenario())

    def test_release_without_acquire_is_a_bug(self):
        import asyncio

        from repro.service.queue import AdmissionController

        async def scenario():
            q = AdmissionController(limit=1, workers=1)
            with pytest.raises(RuntimeError):
                q.release()

        asyncio.run(scenario())


class TestSingleFlight:
    def test_followers_share_leader_result(self):
        import asyncio

        from repro.service.coalesce import SingleFlight

        async def scenario():
            flight = SingleFlight()
            release = asyncio.Event()
            calls = 0

            async def thunk():
                nonlocal calls
                calls += 1
                await release.wait()
                return "value"

            tasks = [
                asyncio.create_task(flight.do("k", thunk)) for _ in range(5)
            ]
            await asyncio.sleep(0)  # let every task reach do()
            assert flight.inflight() == 1
            release.set()
            results = await asyncio.gather(*tasks)
            assert calls == 1
            assert sum(1 for _r, led in results if led) == 1
            assert {r for r, _led in results} == {"value"}
            assert flight.leaders_total == 1
            assert flight.followers_total == 4
            assert flight.inflight() == 0

        asyncio.run(scenario())

    def test_leader_failure_propagates_to_followers(self):
        import asyncio

        from repro.service.coalesce import SingleFlight

        async def scenario():
            flight = SingleFlight()
            release = asyncio.Event()

            async def thunk():
                await release.wait()
                raise RuntimeError("boom")

            tasks = [
                asyncio.create_task(flight.do("k", thunk)) for _ in range(3)
            ]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            # the key is free again after failure
            assert flight.inflight() == 0
            ok, led = await flight.do("k", _ok)
            assert ok == "recovered" and led

        async def _ok():
            return "recovered"

        asyncio.run(scenario())

    def test_distinct_keys_run_independently(self):
        import asyncio

        from repro.service.coalesce import SingleFlight

        async def scenario():
            flight = SingleFlight()

            async def make(value):
                return value

            a, led_a = await flight.do("a", lambda: make(1))
            b, led_b = await flight.do("b", lambda: make(2))
            assert (a, b) == (1, 2)
            assert led_a and led_b
            assert flight.leaders_total == 2
            assert flight.followers_total == 0

        asyncio.run(scenario())
