"""Unit tests for power-over-time profiles."""

import pytest

from repro.apps import build_app, vmpi
from repro.core.energy import EnergyAccountant
from repro.core.gears import LinearVoltageLaw, uniform_gear_set
from repro.core.power import CpuPowerModel, CpuState
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.traces.powerprofile import (
    power_profile,
    power_svg,
    profile_breakdown_consistent,
)

LAW = LinearVoltageLaw()
TOP = LAW.gear(2.3)
LOW = LAW.gear(0.8)

EASY = PlatformConfig(
    latency=0.0, bandwidth=1e9, send_overhead=0.0, recv_overhead=0.0,
    cpus_per_node=1, intra_node_speedup=1.0,
)


def simulate(programs, platform=EASY):
    return MpiSimulator(platform=platform).run(programs, record_intervals=True)


class TestProfile:
    def test_compute_only_flat_power(self):
        result = simulate([[vmpi.compute(2.0)]])
        profile = power_profile(result, [TOP])
        pm = CpuPowerModel()
        assert profile.total_energy() == pytest.approx(
            2.0 * pm.power(TOP, CpuState.COMPUTE)
        )
        _, watts = profile.sample_total(bins=10)
        assert watts == pytest.approx([pm.power(TOP, CpuState.COMPUTE)] * 10)

    def test_wait_period_at_comm_power(self):
        result = simulate(
            [
                [vmpi.compute(1.0), vmpi.barrier()],
                [vmpi.compute(3.0), vmpi.barrier()],
            ]
        )
        profile = power_profile(result, [TOP, TOP])
        pm = CpuPowerModel()
        expected = 4.0 * pm.power(TOP, CpuState.COMPUTE) + 2.0 * pm.power(
            TOP, CpuState.COMM
        )
        assert profile.total_energy() == pytest.approx(expected)

    def test_matches_energy_accountant(self):
        """The headline invariant: profile integral == accountant total."""
        app = build_app("BT-MZ-16", iterations=2)
        result = MpiSimulator().run(app.programs(), record_intervals=True)
        gears = [uniform_gear_set(6).select(2.3).gear] * 16
        profile = power_profile(result, gears)
        breakdown = EnergyAccountant().run_energy(
            result.compute_times, result.execution_time, gears
        )
        assert profile_breakdown_consistent(profile, breakdown, rel=1e-6)

    def test_post_finish_idle_charged_comm(self):
        result = simulate([[vmpi.compute(1.0)], [vmpi.compute(4.0)]])
        profile = power_profile(result, [TOP, TOP])
        pm = CpuPowerModel()
        # rank 0 idles 3s after finishing
        assert profile.rank_energy(0) == pytest.approx(
            1.0 * pm.power(TOP, CpuState.COMPUTE) + 3.0 * pm.power(TOP, CpuState.COMM)
        )

    def test_dvfs_lowers_profile(self):
        result = simulate([[vmpi.compute(1.0)], [vmpi.compute(1.0)]])
        high = power_profile(result, [TOP, TOP])
        low = power_profile(result, [LOW, LOW])
        assert low.total_energy() < high.total_energy()
        assert low.peak_power() < high.peak_power()

    def test_mean_power(self):
        result = simulate([[vmpi.compute(2.0)]])
        profile = power_profile(result, [TOP])
        assert profile.mean_power() == pytest.approx(
            profile.total_energy() / 2.0
        )

    def test_requires_intervals(self):
        result = MpiSimulator(platform=EASY).run([[vmpi.compute(1.0)]])
        with pytest.raises(ValueError, match="record_intervals"):
            power_profile(result, [TOP])

    def test_gear_count_mismatch_rejected(self):
        result = simulate([[vmpi.compute(1.0)]])
        with pytest.raises(ValueError, match="gears"):
            power_profile(result, [TOP, TOP])

    def test_bad_bins_rejected(self):
        result = simulate([[vmpi.compute(1.0)]])
        profile = power_profile(result, [TOP])
        with pytest.raises(ValueError):
            profile.sample_total(bins=0)


class TestSvg:
    def test_valid_svg(self):
        result = simulate(
            [[vmpi.compute(1.0), vmpi.barrier()], [vmpi.compute(2.0), vmpi.barrier()]]
        )
        profile = power_profile(result, [TOP, TOP])
        svg = power_svg(profile, title="demo")
        assert svg.startswith("<svg")
        assert "demo" in svg
        assert "polygon" in svg
