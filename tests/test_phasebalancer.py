"""Unit tests for the phase-aware (per-phase DVFS) balancer."""

import pytest

from repro.apps import build_app
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import uniform_gear_set
from repro.core.phasebalancer import PhaseAwareLoadBalancer
from repro.netsim.simulator import MpiSimulator


def trace_of(name, iterations=2, **kwargs):
    app = build_app(name, iterations=iterations, **kwargs)
    sim = MpiSimulator()
    return sim.run(
        app.programs(), record_trace=True, meta={"name": app.name}
    ).trace


class TestPepcFix:
    @pytest.fixture(scope="class")
    def reports(self):
        trace = trace_of("PEPC-128")
        single = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace
        )
        phased = PhaseAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace
        )
        return single, phased

    def test_time_penalty_removed(self, reports):
        single, phased = reports
        assert single.normalized_time > 1.05  # the paper's PEPC pathology
        assert phased.normalized_time == pytest.approx(1.0, abs=0.01)

    def test_more_energy_saved(self, reports):
        single, phased = reports
        assert phased.normalized_energy < single.normalized_energy - 0.02

    def test_distinct_per_phase_assignments(self, reports):
        _, phased = reports
        assert set(phased.phases) == {"tree-build", "force"}
        tree = phased.assignments["tree-build"].frequencies
        force = phased.assignments["force"].frequencies
        assert tree.tolist() != force.tolist()

    def test_report_fields(self, reports):
        _, phased = reports
        assert phased.algorithm == "per-phase-MAX"
        assert phased.nproc == 128
        assert len(phased.resting_gears) == 128
        assert phased.normalized_edp == pytest.approx(
            phased.normalized_energy * phased.normalized_time
        )
        assert "PEPC-128" in str(phased)


class TestSinglePhaseEquivalence:
    def test_reduces_to_plain_balancer_on_uniform_phase(self):
        """A single-phase workload must get identical timing from both
        balancers (energy differs only via the comm-residual gear)."""
        from repro.apps import vmpi
        from repro.netsim.platform import PlatformConfig

        platform = PlatformConfig(
            latency=0.0, bandwidth=1e9, send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        work = [0.5, 1.0, 2.0]
        sim = MpiSimulator(platform=platform)
        trace = sim.run(
            [[vmpi.compute(w, phase="solve"), vmpi.barrier()] for w in work],
            record_trace=True,
        ).trace

        plain = PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(6), platform=platform
        ).balance_trace(trace)
        phased = PhaseAwareLoadBalancer(
            gear_set=uniform_gear_set(6), platform=platform
        ).balance_trace(trace)

        assert phased.new_time == pytest.approx(plain.new_time)
        assert phased.assignments["solve"].frequencies.tolist() == [
            g.frequency for g in plain.assignment.gears
        ]


class TestValidation:
    def test_empty_trace_rejected(self):
        from repro.traces.records import MarkerRecord
        from repro.traces.trace import Trace

        bare = Trace.from_streams([[MarkerRecord("iter", 0)]])
        with pytest.raises(ValueError, match="no compute"):
            PhaseAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(bare)

    def test_idle_phase_skipped(self):
        from repro.apps import vmpi

        sim = MpiSimulator()
        trace = sim.run(
            [
                [vmpi.compute(1.0, phase="a"), vmpi.compute(0.0, phase="b"),
                 vmpi.barrier()],
                [vmpi.compute(2.0, phase="a"), vmpi.compute(0.0, phase="b"),
                 vmpi.barrier()],
            ],
            record_trace=True,
        ).trace
        report = PhaseAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace
        )
        assert "b" not in report.assignments
