"""Unit tests for network topologies."""

import pytest

from repro.apps import vmpi
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.netsim.topology import (
    FatTree,
    FlatTopology,
    Mesh2D,
    Torus2D,
    with_topology,
)


class TestFlat:
    def test_one_hop_between_nodes(self):
        t = FlatTopology()
        assert t.hops(0, 0) == 0
        assert t.hops(0, 7) == 1


class TestMesh2D:
    def test_manhattan_distance(self):
        mesh = Mesh2D(16)  # 4x4
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 1) == 1
        assert mesh.hops(0, 5) == 2  # (0,0)->(1,1)
        assert mesh.hops(0, 15) == 6  # corner to corner

    def test_non_square_factorisation(self):
        mesh = Mesh2D(12)  # 3x4
        assert mesh.hops(0, 11) == 2 + 3

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(4).hops(0, 9)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(0)


class TestTorus2D:
    def test_wraparound_shortens(self):
        mesh, torus = Mesh2D(16), Torus2D(16)
        assert mesh.hops(0, 3) == 3
        assert torus.hops(0, 3) == 1  # wrap in the row
        assert torus.hops(0, 12) == 1  # wrap in the column

    def test_torus_never_longer_than_mesh(self):
        mesh, torus = Mesh2D(16), Torus2D(16)
        for a in range(16):
            for b in range(16):
                assert torus.hops(a, b) <= mesh.hops(a, b)


class TestFatTree:
    def test_leaf_locality(self):
        ft = FatTree(leaf_size=4)
        assert ft.hops(0, 3) == 1
        assert ft.hops(0, 4) == 3
        assert ft.hops(5, 5) == 0

    def test_bad_leaf_rejected(self):
        with pytest.raises(ValueError):
            FatTree(leaf_size=0)


class TestTopologyPlatform:
    def base(self):
        return PlatformConfig(
            latency=1e-4, bandwidth=1e9, cpus_per_node=1,
            send_overhead=0.0, recv_overhead=0.0, intra_node_speedup=1.0,
        )

    def test_latency_scales_with_hops(self):
        platform = with_topology(self.base(), Mesh2D(16))
        near = platform.transfer_time(0, 0, 1)
        far = platform.transfer_time(0, 0, 15)
        assert far == pytest.approx(6 * near)

    def test_bandwidth_unaffected(self):
        platform = with_topology(self.base(), Mesh2D(16))
        t = platform.transfer_time(10**6, 0, 15)
        assert t == pytest.approx(6e-4 + 10**6 / 1e9)

    def test_intra_node_keeps_base_behaviour(self):
        base = PlatformConfig(
            latency=1e-4, bandwidth=1e9, cpus_per_node=4,
            send_overhead=0.0, recv_overhead=0.0, intra_node_speedup=2.0,
        )
        platform = with_topology(base, Mesh2D(4))
        assert platform.transfer_time(0, 0, 1) == base.transfer_time(0, 0, 1)

    def test_name_composed(self):
        platform = with_topology(self.base(), Torus2D(4))
        assert "torus2d" in platform.name

    def test_simulation_runs_on_topology_platform(self):
        platform = with_topology(self.base(), Mesh2D(4))
        sim = MpiSimulator(platform=platform)
        result = sim.run(
            [[vmpi.send(3, 100)], [vmpi.compute(0.0)], [vmpi.compute(0.0)],
             [vmpi.recv(0)]]
        )
        # 0 -> 3 on a 2x2 mesh: 2 hops
        assert result.end_times[3] == pytest.approx(2e-4 + 100 / 1e9)

    def test_distant_ranks_pay_more_in_practice(self):
        flat = MpiSimulator(platform=self.base())
        meshy = MpiSimulator(platform=with_topology(self.base(), Mesh2D(16)))
        programs = lambda: [
            [vmpi.send(15, 1000)] if r == 0
            else ([vmpi.recv(0)] if r == 15 else [vmpi.compute(0.0)])
            for r in range(16)
        ]
        assert (
            meshy.run(programs()).execution_time
            > flat.run(programs()).execution_time
        )
