"""The power-cap subsystem: algorithm, balancer, identities, service.

Contracts under test (see ``repro.core.powercap``):

* an emitted assignment's modeled all-compute peak never exceeds the
  cap; infeasible caps raise :class:`PowerCapError` carrying the PC
  rule codes the admission layer uses;
* degradation is monotone in the budget — a tighter cap yields a
  later-or-equal target time and slower-or-equal per-rank gears;
* capped reports are byte-identical across ``des|compiled|auto``
  engines, like every other pricing path;
* cache identities: capless payloads keep their exact pre-cap schema
  (no ``power_cap`` key, no ``power`` section in the wire format) while
  capped cells get distinct, cap-carrying keys — and the service's
  fast-path identity mirrors the Runner's verbatim.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import MaxAlgorithm
from repro.core.gears import NOMINAL_FMAX, uniform_gear_set
from repro.core.power import CpuPowerModel, CpuState
from repro.core.powercap import (
    PowerCapAlgorithm,
    PowerCapBalancer,
    PowerCapError,
    attach_power_section,
    modeled_peak_power,
)
from repro.core.timemodel import BetaTimeModel
from repro.experiments.runner import Runner, RunnerConfig

GS = uniform_gear_set(6)
PM = CpuPowerModel()
MODEL = BetaTimeModel(fmax=NOMINAL_FMAX, beta=0.5)

#: Model watts per rank at the set's floor/ceiling, all-compute.
P_FLOOR = PM.power(GS.select(GS.fmin).gear, CpuState.COMPUTE)
P_TOP = PM.power(GS.top_gear(), CpuState.COMPUTE)


def peak(assignment):
    return modeled_peak_power(assignment.gears, PM)


class TestPowerCapAlgorithm:
    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            PowerCapAlgorithm(0.0)
        with pytest.raises(ValueError):
            PowerCapAlgorithm(-5.0)

    def test_name_embeds_cap(self):
        assert PowerCapAlgorithm(40.0).name == "POWERCAP[40]"
        assert PowerCapAlgorithm(12.5).name == "POWERCAP[12.5]"

    def test_slack_cap_degenerates_to_uncapped_greedy(self):
        times = [1.0, 2.0, 4.0]
        alg = PowerCapAlgorithm(1e6)
        capped = alg.assign(times, GS, MODEL)
        reference = alg.uncapped_reference(times, GS, MODEL)
        assert [g.frequency for g in capped.gears] == [
            g.frequency for g in reference.gears
        ]
        # the critical rank runs at the ceiling, donors below it
        assert capped.gears[-1].frequency == pytest.approx(GS.fmax)
        assert capped.gears[0].frequency < GS.fmax

    def test_infeasible_cap_raises_pc_coded_error(self):
        times = [1.0] * 8
        with pytest.raises(PowerCapError) as exc:
            PowerCapAlgorithm(8 * P_FLOOR * 0.5).assign(times, GS, MODEL)
        codes = {d.code for d in exc.value.diagnostics}
        assert codes & {"PC001", "PC002"}
        assert "PC" in str(exc.value)

    def test_binding_cap_respected_and_binding(self):
        times = [1.0] * 8  # perfectly balanced: everyone is critical
        cap = 8 * (P_FLOOR + P_TOP) / 2
        alg = PowerCapAlgorithm(cap)
        got = alg.assign(times, GS, MODEL)
        assert peak(got) <= cap * (1 + 1e-9)
        # the budget actually bit: below the uncapped all-fmax peak
        assert peak(got) < 8 * P_TOP - 1e-9

    def test_water_filling_boundary_is_exact(self):
        """Re-assigning at the returned target reproduces the result."""
        times = [1.0, 1.5, 2.0, 3.0]
        cap = 4 * (P_FLOOR + P_TOP) / 2
        alg = PowerCapAlgorithm(cap)
        got = alg.assign(times, GS, MODEL)
        again = alg.assign(times, GS, MODEL)
        assert [g.frequency for g in got.gears] == [
            g.frequency for g in again.gears
        ]

    @settings(deadline=None, max_examples=60)
    @given(
        times=st.lists(st.floats(0.01, 10.0), min_size=2, max_size=32),
        cap_frac=st.floats(0.05, 1.5),
        beta=st.floats(0.0, 1.0),
    )
    def test_peak_never_exceeds_cap_or_pc_error(self, times, cap_frac, beta):
        model = BetaTimeModel(fmax=NOMINAL_FMAX, beta=beta)
        cap = cap_frac * len(times) * P_TOP
        alg = PowerCapAlgorithm(cap)
        try:
            got = alg.assign(times, GS, model)
        except PowerCapError as exc:
            assert {d.code for d in exc.diagnostics} & {"PC001", "PC002"}
            return
        assert peak(got) <= cap * (1 + 1e-9)

    @settings(deadline=None, max_examples=40)
    @given(
        times=st.lists(st.floats(0.01, 10.0), min_size=2, max_size=16),
        lo_frac=st.floats(0.30, 0.9),
        hi_frac=st.floats(0.30, 0.9),
        beta=st.floats(0.0, 1.0),
    )
    def test_monotone_degradation_as_cap_tightens(
        self, times, lo_frac, hi_frac, beta
    ):
        """Tighter budget: slower-or-equal gears on every rank."""
        model = BetaTimeModel(fmax=NOMINAL_FMAX, beta=beta)
        lo_frac, hi_frac = sorted((lo_frac, hi_frac))
        n = len(times)
        tight = PowerCapAlgorithm(lo_frac * n * P_TOP).assign(times, GS, model)
        loose = PowerCapAlgorithm(hi_frac * n * P_TOP).assign(times, GS, model)
        for a, b in zip(tight.gears, loose.gears, strict=True):
            assert a.frequency <= b.frequency + 1e-12
        assert tight.target_time >= loose.target_time - 1e-12
        assert peak(tight) <= peak(loose) + 1e-9


class TestPowerCapBalancer:
    @pytest.fixture(scope="class")
    def trace(self):
        runner = Runner(RunnerConfig(iterations=2))
        return runner.trace("BT-MZ-32")

    def test_report_carries_power_section(self, trace):
        cap = 0.5 * trace.nproc * P_TOP
        report = PowerCapBalancer(GS, cap).balance_trace(trace)
        power = report.power
        assert power is not None
        assert power["cap_w"] == pytest.approx(cap)
        assert power["peak_power_w"] <= cap * (1 + 1e-9)
        assert power["headroom_w"] == pytest.approx(
            cap - power["peak_power_w"]
        )
        assert power["binding_count"] == len(power["binding_ranks"])
        assert report.algorithm.startswith("POWERCAP[")

    def test_cap_sweep_monotone_and_within_budget(self, trace):
        caps = [f * trace.nproc * P_TOP for f in (0.35, 0.5, 0.8, 1.0)]
        reports = PowerCapBalancer(GS, caps[0]).cap_sweep_trace(trace, caps)
        times = [r.normalized_time for r in reports]
        assert times == sorted(times, reverse=True)  # looser = faster
        for cap, r in zip(caps, reports):
            assert r.power["peak_power_w"] <= cap * (1 + 1e-9)
        # the loosest budget is unconstrained
        assert reports[-1].power["binding_count"] == 0

    def test_engines_byte_identical(self, trace):
        cap = 0.45 * trace.nproc * P_TOP
        payloads = [
            json.dumps(
                PowerCapBalancer(GS, cap, engine=engine)
                .balance_trace(trace)
                .to_json(),
                sort_keys=True,
            )
            for engine in ("des", "compiled", "auto")
        ]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_batched_counters_visible(self, trace):
        from repro.netsim.enginestats import process_engine_stats

        before = process_engine_stats()
        caps = [f * trace.nproc * P_TOP for f in (0.4, 0.6, 0.8)]
        PowerCapBalancer(GS, caps[0]).cap_sweep_trace(trace, caps)
        after = process_engine_stats()
        assert after["batch_candidates"] - before["batch_candidates"] >= 3

    def test_attach_enforces_cap_contract(self, trace):
        cap = 0.5 * trace.nproc * P_TOP
        report = PowerCapBalancer(GS, cap).balance_trace(trace)
        # an absurdly tight algorithm must refuse this assignment
        liar = PowerCapAlgorithm(cap / 10.0)
        with pytest.raises(RuntimeError, match="contract"):
            attach_power_section(report, liar, GS, MODEL)


class TestCacheIdentity:
    def test_capless_payload_is_pre_cap_schema(self):
        runner = Runner(RunnerConfig(iterations=2))
        payload = runner._report_payload(
            "CG-32", GS, MaxAlgorithm(), 0.5
        )
        assert "power_cap" not in payload
        assert payload["algorithm"] == "MAX"

    def test_capped_payload_distinct_per_cap(self):
        runner = Runner(RunnerConfig(iterations=2))
        a = runner._report_payload(
            "CG-32", GS, PowerCapAlgorithm(40.0), 0.5
        )
        b = runner._report_payload(
            "CG-32", GS, PowerCapAlgorithm(50.0), 0.5
        )
        assert a["power_cap"] == 40.0 and b["power_cap"] == 50.0
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_service_identity_mirrors_runner_payload(self, tmp_path):
        """The front-end fast path and the worker's Runner must hash the
        same bytes, capped or not, or the cache never hits."""
        from repro.service.app import ServiceApp, ServiceConfig

        app = ServiceApp(
            ServiceConfig(port=0, cache_dir=str(tmp_path / "cache"))
        )
        spec = {
            "app": "CG-32",
            "gears": "uniform:6",
            "algorithm": "max",
            "beta": 0.5,
            "iterations": 2,
            "base_compute": 0.02,
        }
        runner = Runner(RunnerConfig(iterations=2, base_compute=0.02))
        for cap in (None, 77.5):
            if cap is not None:
                spec = {**spec, "power_cap": cap}
            algorithm = (
                PowerCapAlgorithm(cap) if cap is not None else MaxAlgorithm()
            )
            kind, payload = app._cache_identity("balance", spec)
            expected = runner._report_payload("CG-32", GS, algorithm, 0.5)
            assert kind == "report"
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )

    def test_cell_key_distinguishes_caps(self):
        runner = Runner(RunnerConfig(iterations=2))
        k_capless = runner._cell_key("CG-32", GS, MaxAlgorithm(), 0.5)
        k40 = runner._cell_key("CG-32", GS, PowerCapAlgorithm(40.0), 0.5)
        k50 = runner._cell_key("CG-32", GS, PowerCapAlgorithm(50.0), 0.5)
        assert k_capless[-1] is None
        assert len({k_capless, k40, k50}) == 3


class TestWireFormat:
    def test_capless_report_json_has_no_power_key(self):
        """Byte-identity regression: the capless wire format must not
        grow a ``power`` key (old clients and old cache blobs)."""
        runner = Runner(RunnerConfig(iterations=2))
        report = runner.balance("CG-32", GS, MaxAlgorithm(), beta=0.5)
        body = report.to_json()
        assert "power" not in body
        assert "power" not in json.dumps(body)

    def test_capped_report_json_round_trips_power(self):
        runner = Runner(RunnerConfig(iterations=2))
        report = runner.balance("CG-32", GS, beta=0.5, power_cap=100.0)
        body = report.to_json()
        assert body["power"]["cap_w"] == 100.0
        json.loads(json.dumps(body))  # JSON-serialisable throughout

    def test_runner_caches_capped_and_capless_separately(self, tmp_path):
        cfg = RunnerConfig(iterations=2, cache_dir=str(tmp_path / "c"))
        runner = Runner(cfg)
        capless = runner.balance("CG-32", GS, beta=0.5)
        capped = runner.balance("CG-32", GS, beta=0.5, power_cap=90.0)
        assert capless.algorithm == "MAX"
        assert capped.algorithm == "POWERCAP[90]"
        # a fresh runner resolves both from disk, still distinct
        fresh = Runner(cfg)
        again = fresh.balance("CG-32", GS, beta=0.5, power_cap=90.0)
        assert again.power["cap_w"] == 90.0


class TestServicePath:
    def test_execute_balance_with_cap(self):
        from repro.service.workers import execute_balance

        report, _runner = execute_balance(
            {
                "app": "CG-32",
                "gears": "uniform:6",
                "algorithm": "max",
                "beta": 0.5,
                "iterations": 2,
                "base_compute": 0.02,
                "power_cap": 150.0,
            }
        )
        assert report.power is not None
        assert report.power["peak_power_w"] <= 150.0 * (1 + 1e-9)

    def test_execute_balance_many_prices_caps(self):
        from repro.service.workers import execute_balance_many

        reports, _runner = execute_balance_many(
            {
                "app": "CG-32",
                "gears": "uniform:6",
                "algorithm": "max",
                "beta": 0.5,
                "iterations": 2,
                "base_compute": 0.02,
                "power_cap": 150.0,
                "candidates": [
                    {"gears": "uniform:6", "algorithm": "max"},
                    {"gears": "uniform:4", "algorithm": "avg"},
                ],
            }
        )
        assert len(reports) == 2
        for r in reports:
            assert r.algorithm == "POWERCAP[150]"
            assert r.power is not None


class TestCapSweepExperiment:
    def test_cap_sweep_runs_and_is_monotone(self):
        from repro.experiments.cap_sweep import run

        result = run(RunnerConfig(iterations=2, apps=("CG-32",)))
        rows = sorted(result.rows, key=lambda r: r["budget_pct"])
        times = [r["time_pct"] for r in rows]
        assert times == sorted(times, reverse=True)
        assert all(r["headroom_w"] >= -1e-9 for r in rows)
        assert "power" in result.series
        curve = result.series["power"]["per_app"]["CG-32"]
        assert len(curve["time_pct"]) == len(result.rows)
