"""Unit tests for ASCII/SVG timeline rendering."""

import pytest

from repro.apps import vmpi
from repro.netsim.simulator import MpiSimulator
from repro.traces.timeline import ascii_timeline, compute_fraction, svg_timeline


@pytest.fixture()
def run_result(fast_platform):
    programs = [
        [vmpi.compute(1.0), vmpi.barrier(), vmpi.compute(0.5)],
        [vmpi.compute(2.0), vmpi.barrier(), vmpi.compute(0.5)],
    ]
    return MpiSimulator(platform=fast_platform).run(
        programs, record_intervals=True
    )


class TestAscii:
    def test_one_row_per_rank(self, run_result):
        text = ascii_timeline(run_result, width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert lines[1].startswith("r0")
        assert lines[2].startswith("r1")

    def test_compute_and_wait_glyphs(self, run_result):
        text = ascii_timeline(run_result, width=40)
        r0 = text.splitlines()[1]
        assert "#" in r0 and "." in r0

    def test_busy_rank_has_no_wait(self, run_result):
        r1 = ascii_timeline(run_result, width=40).splitlines()[2]
        assert "." not in r1.split("|")[1]

    def test_detailed_mode_distinguishes_kinds(self, fast_platform):
        programs = [
            [vmpi.compute(1.0), vmpi.send(1, 2048)],
            [vmpi.recv(0)],
        ]
        result = MpiSimulator(platform=fast_platform).run(
            programs, record_intervals=True
        )
        text = ascii_timeline(result, width=40, detailed=True)
        assert "r" in text.splitlines()[2]  # recv glyph on rank 1's row

    def test_rank_subsampling(self, fast_platform):
        programs = [[vmpi.compute(1.0)] for _ in range(64)]
        result = MpiSimulator(platform=fast_platform).run(
            programs, record_intervals=True
        )
        text = ascii_timeline(result, width=40, max_ranks=8)
        assert len(text.splitlines()) <= 9

    def test_requires_intervals(self, fast_platform):
        result = MpiSimulator(platform=fast_platform).run([[vmpi.compute(1.0)]])
        with pytest.raises(ValueError, match="record_intervals"):
            ascii_timeline(result)

    def test_narrow_width_rejected(self, run_result):
        with pytest.raises(ValueError):
            ascii_timeline(run_result, width=5)


class TestSvg:
    def test_valid_svg_document(self, run_result):
        svg = svg_timeline(run_result, title="test run")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "test run" in svg
        assert svg.count("<rect") >= 4

    def test_rank_labels_present(self, run_result):
        svg = svg_timeline(run_result)
        assert ">r0<" in svg and ">r1<" in svg

    def test_subsampling(self, fast_platform):
        programs = [[vmpi.compute(1.0)] for _ in range(32)]
        result = MpiSimulator(platform=fast_platform).run(
            programs, record_intervals=True
        )
        svg = svg_timeline(result, max_ranks=4)
        assert svg.count("<rect") == 4


class TestComputeFraction:
    def test_fraction_definition(self, run_result):
        # total compute 4.0 over 2 ranks * exec time
        expected = 4.0 / (2 * run_result.execution_time)
        assert compute_fraction(run_result) == pytest.approx(expected)

    def test_zero_run(self, fast_platform):
        result = MpiSimulator(platform=fast_platform).run([[vmpi.compute(0.0)]])
        assert compute_fraction(result) == 0.0
