"""Unit tests for point-to-point collective decomposition."""

import pytest

from repro.apps import build_app, vmpi
from repro.netsim.decomposed import COLL_TAG_BASE, decompose
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.simx.errors import ProcessFailure, SimulationError
from repro.traces.records import COLLECTIVE_OPS, CollectiveRecord

BASE = dict(
    latency=1e-5, bandwidth=1e8, send_overhead=0.0, recv_overhead=0.0,
    cpus_per_node=1, intra_node_speedup=1.0,
)
ANALYTIC = PlatformConfig(**BASE)
DECOMPOSED = PlatformConfig(**BASE, decompose_collectives=True)


def world(op, nproc, nbytes=4096, root=0, skew=0.0):
    return [
        [vmpi.compute(skew * r), CollectiveRecord(op, nbytes, root)]
        for r in range(nproc)
    ]


class TestDecompositionPrograms:
    @pytest.mark.parametrize("op", COLLECTIVE_OPS)
    @pytest.mark.parametrize("nproc", [2, 3, 5, 8, 13])
    def test_fragments_are_matched(self, op, nproc):
        """Across all ranks, every (src, dst, tag) send has a recv."""
        sends: dict[tuple, int] = {}
        recvs: dict[tuple, int] = {}
        for rank in range(nproc):
            for rec in decompose(op, rank, nproc, 128, root=1, instance=0):
                if rec.kind in ("send", "isend"):
                    key = (rank, rec.dst, rec.tag)
                    sends[key] = sends.get(key, 0) + 1
                elif rec.kind in ("recv", "irecv"):
                    key = (rec.src, rank, rec.tag)
                    recvs[key] = recvs.get(key, 0) + 1
        assert sends == recvs

    def test_tags_in_reserved_space(self):
        for rank in range(4):
            for rec in decompose("allreduce", rank, 4, 64, 0, instance=7):
                if hasattr(rec, "tag"):
                    assert rec.tag >= COLL_TAG_BASE

    def test_distinct_instances_distinct_tags(self):
        tags0 = {
            rec.tag
            for rec in decompose("barrier", 0, 4, 0, 0, instance=0)
            if hasattr(rec, "tag")
        }
        tags1 = {
            rec.tag
            for rec in decompose("barrier", 0, 4, 0, 0, instance=1)
            if hasattr(rec, "tag")
        }
        assert tags0.isdisjoint(tags1)

    def test_single_rank_is_empty(self):
        assert list(decompose("allreduce", 0, 1, 64, 0, 0)) == []

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            list(decompose("scan", 0, 4, 64, 0, 0))


class TestDecomposedExecution:
    @pytest.mark.parametrize("op", COLLECTIVE_OPS)
    @pytest.mark.parametrize("nproc", [2, 3, 8, 13])
    def test_completes_for_all_ops_and_sizes(self, op, nproc):
        result = MpiSimulator(platform=DECOMPOSED).run(world(op, nproc))
        assert result.execution_time > 0.0

    @pytest.mark.parametrize("op", ["barrier", "bcast", "allreduce", "alltoall"])
    def test_close_to_analytic_model(self, op):
        """Both models describe the same algorithms; timings should
        agree within tens of percent."""
        nproc = 8
        ta = MpiSimulator(platform=ANALYTIC).run(
            world(op, nproc, skew=1e-4)
        ).execution_time
        td = MpiSimulator(platform=DECOMPOSED).run(
            world(op, nproc, skew=1e-4)
        ).execution_time
        assert td == pytest.approx(ta, rel=0.35)

    def test_no_global_barrier_root_leaves_early(self):
        """Under decomposition a bcast root doesn't wait for the leaves
        — the defining semantic difference from the analytic model."""
        nproc = 8
        programs = [
            [vmpi.compute(0.0 if r == 0 else 0.01), vmpi.bcast(1024, root=0)]
            for r in range(nproc)
        ]
        result = MpiSimulator(platform=DECOMPOSED).run(programs)
        # rank 0 sends immediately; the late leaves pace the total
        assert result.end_times[0] < result.execution_time - 0.005

    def test_analytic_model_is_a_barrier_in_contrast(self):
        nproc = 8
        programs = [
            [vmpi.compute(0.0 if r == 0 else 0.01), vmpi.bcast(1024, root=0)]
            for r in range(nproc)
        ]
        result = MpiSimulator(platform=ANALYTIC).run(programs)
        assert result.end_times[0] == pytest.approx(result.execution_time)

    def test_respects_bus_contention(self):
        free = PlatformConfig(**BASE, decompose_collectives=True)
        jammed = PlatformConfig(**BASE, decompose_collectives=True, buses=1)
        big = 10**6
        t_free = MpiSimulator(platform=free).run(
            world("alltoall", 4, nbytes=big)
        ).execution_time
        t_jam = MpiSimulator(platform=jammed).run(
            world("alltoall", 4, nbytes=big)
        ).execution_time
        assert t_jam > t_free * 1.5

    def test_mismatched_ops_still_detected(self):
        programs = [
            [CollectiveRecord("barrier")],
            [CollectiveRecord("allreduce", 8)],
        ]
        with pytest.raises((ProcessFailure, SimulationError)):
            MpiSimulator(platform=DECOMPOSED).run(programs)

    def test_interval_accounting_single_collective_span(self):
        result = MpiSimulator(platform=DECOMPOSED).run(
            world("allreduce", 4, skew=1e-3), record_intervals=True
        )
        for rank in range(4):
            kinds = [iv.kind for iv in result.intervals[rank]]
            assert kinds.count("collective") == 1
            assert "send" not in kinds  # fragments don't leak

    def test_app_requests_unaffected(self):
        """Application requests stay open across a decomposed collective
        and complete afterwards — separate namespaces."""
        programs = [
            [
                vmpi.irecv(1, tag=5, request=3),
                CollectiveRecord("barrier"),
                vmpi.wait(3),
            ],
            [
                CollectiveRecord("barrier"),
                vmpi.send(0, 64, tag=5),
            ],
        ]
        result = MpiSimulator(platform=DECOMPOSED).run(programs)
        assert result.execution_time > 0.0

    def test_full_app_runs_decomposed(self):
        app = build_app("MG-16", iterations=2, platform=DECOMPOSED)
        result = MpiSimulator(platform=DECOMPOSED).run(app.programs())
        baseline = MpiSimulator(platform=ANALYTIC).run(
            build_app("MG-16", iterations=2, platform=ANALYTIC).programs()
        )
        assert result.execution_time == pytest.approx(
            baseline.execution_time, rel=0.25
        )
