"""Unit tests for the gear-set optimizer."""

import numpy as np
import pytest

from repro.core.gearopt import GearSetOptimizer, workload_energy
from repro.core.gears import exponential_gear_set, uniform_gear_set
from repro.core.power import CpuPowerModel, CpuState
from repro.core.timemodel import BetaTimeModel

MODEL = BetaTimeModel(fmax=2.3, beta=0.5)
PM = CpuPowerModel()


class TestWorkloadEnergy:
    def test_balanced_workload_equals_baseline(self):
        times = [2.0, 2.0, 2.0]
        gear_set = uniform_gear_set(6)
        e = workload_energy(times, gear_set, MODEL, PM)
        top = gear_set.select(2.3).gear
        assert e == pytest.approx(6.0 * PM.power(top, CpuState.COMPUTE))

    def test_imbalanced_workload_saves_with_gears(self):
        times = [1.0, 2.0, 4.0]
        coarse = uniform_gear_set(2)
        fine = uniform_gear_set(15)
        e_coarse = workload_energy(times, coarse, MODEL, PM)
        e_fine = workload_energy(times, fine, MODEL, PM)
        assert e_fine <= e_coarse + 1e-9

    def test_matches_balancer_on_barrier_workload(self):
        """The analytic form must agree with the replay pipeline on a
        barrier-synchronised world."""
        from repro.apps import vmpi
        from repro.core.balancer import PowerAwareLoadBalancer
        from repro.netsim.platform import PlatformConfig
        from repro.netsim.simulator import MpiSimulator

        platform = PlatformConfig(
            latency=0.0, bandwidth=1e9, send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        work = [0.7, 1.1, 2.0, 0.4]
        sim = MpiSimulator(platform=platform)
        live = sim.run(
            [[vmpi.compute(w), vmpi.barrier()] for w in work], record_trace=True
        )
        gear_set = uniform_gear_set(6)
        report = PowerAwareLoadBalancer(
            gear_set=gear_set, platform=platform
        ).balance_trace(live.trace)
        analytic = workload_energy(work, gear_set, MODEL, PM)
        assert analytic == pytest.approx(report.new_energy.total, rel=1e-9)


class TestOptimizer:
    def test_top_gear_is_fmax(self):
        result = GearSetOptimizer().optimize([[1.0, 2.0, 3.0]], n_gears=3)
        assert result.gear_set.fmax == pytest.approx(2.3)

    def test_requested_size_respected(self):
        rng = np.random.default_rng(0)
        workloads = [rng.uniform(0.5, 2.0, size=16) for _ in range(3)]
        for n in (1, 2, 4, 6):
            result = GearSetOptimizer().optimize(workloads, n_gears=n)
            assert len(result.gear_set) <= n

    def test_single_gear_is_fmax_only(self):
        result = GearSetOptimizer().optimize([[1.0, 3.0]], n_gears=1)
        assert result.gear_set.frequencies == (2.3,)

    def test_two_rank_workload_optimal_placement(self):
        """With one slow rank the second gear should sit exactly at its
        wanted frequency (clamped to the floor)."""
        times = [2.0, 4.0]
        result = GearSetOptimizer().optimize([times], n_gears=2)
        f_wanted = MODEL.frequency_for(2.0, 4.0)
        assert result.gear_set.frequencies[0] == pytest.approx(
            max(f_wanted, 0.8), abs=1e-6
        )

    def test_never_worse_than_hand_designed(self):
        """The DP is exact for its objective: it must beat (or tie)
        uniform and exponential under the analytic model."""
        rng = np.random.default_rng(7)
        workloads = [rng.uniform(0.2, 2.0, size=24) for _ in range(4)]
        opt = GearSetOptimizer()
        for n in (2, 3, 4, 6):
            result = opt.optimize(workloads, n_gears=n, normalize=False)
            for baseline in (uniform_gear_set(n), exponential_gear_set(n)):
                base_e = sum(
                    workload_energy(w, baseline, MODEL, PM) for w in workloads
                )
                assert result.predicted_energy <= base_e + 1e-9

    def test_predicted_energy_matches_reevaluation(self):
        workloads = [[0.5, 1.0, 2.0], [1.5, 1.5, 3.0]]
        result = GearSetOptimizer().optimize(workloads, n_gears=3,
                                             normalize=False)
        recomputed = sum(
            workload_energy(w, result.gear_set, MODEL, PM) for w in workloads
        )
        assert result.predicted_energy == pytest.approx(recomputed, rel=1e-9)

    def test_more_gears_never_hurt(self):
        rng = np.random.default_rng(3)
        workloads = [rng.uniform(0.3, 3.0, size=32)]
        opt = GearSetOptimizer()
        energies = [
            opt.optimize(workloads, n_gears=n, normalize=False).predicted_energy
            for n in (1, 2, 3, 5, 8)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))

    def test_floor_respected(self):
        result = GearSetOptimizer().optimize([[0.01, 5.0]], n_gears=2)
        assert result.gear_set.fmin >= 0.8 - 1e-12

    def test_bad_inputs_rejected(self):
        opt = GearSetOptimizer()
        with pytest.raises(ValueError):
            opt.optimize([], n_gears=2)
        with pytest.raises(ValueError):
            opt.optimize([[1.0]], n_gears=0)
        with pytest.raises(ValueError):
            opt.optimize([[0.0, 0.0]], n_gears=2)

    def test_candidates_clamped_and_include_fmax(self):
        opt = GearSetOptimizer()
        pool = opt.candidates([np.array([0.01, 1.0, 2.0])])
        assert pool.min() >= 0.8 - 1e-12
        assert pool.max() == pytest.approx(2.3)
