"""Unit tests for trace records and their dict round-trip."""

import pytest

from repro.traces.records import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_OPS,
    CollectiveRecord,
    ComputeBurst,
    IrecvRecord,
    IsendRecord,
    MarkerRecord,
    RecvRecord,
    SendRecord,
    WaitallRecord,
    WaitRecord,
    record_from_dict,
    record_to_dict,
)

ALL_RECORDS = [
    ComputeBurst(0.5, phase="solve", beta=0.7),
    ComputeBurst(0.0),
    SendRecord(dst=3, nbytes=1024, tag=7),
    RecvRecord(src=ANY_SOURCE, tag=ANY_TAG),
    RecvRecord(src=2, tag=0),
    IsendRecord(dst=1, nbytes=0, tag=0, request=5),
    IrecvRecord(src=4, tag=9, request=6),
    WaitRecord(request=5),
    WaitallRecord(requests=(1, 2, 3)),
    CollectiveRecord("allreduce", nbytes=64),
    CollectiveRecord("bcast", nbytes=128, root=2),
    MarkerRecord("iter", iteration=3),
]


class TestValidation:
    def test_negative_burst_duration_rejected(self):
        with pytest.raises(ValueError):
            ComputeBurst(-0.1)

    def test_non_finite_burst_duration_rejected(self):
        with pytest.raises(ValueError):
            ComputeBurst(float("inf"))
        with pytest.raises(ValueError):
            ComputeBurst(float("nan"))

    def test_burst_beta_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ComputeBurst(1.0, beta=1.5)
        with pytest.raises(ValueError):
            ComputeBurst(1.0, beta=-0.1)

    def test_burst_beta_none_is_default(self):
        assert ComputeBurst(1.0).beta is None

    def test_send_wildcard_dst_rejected(self):
        with pytest.raises(ValueError):
            SendRecord(dst=-1, nbytes=10)

    def test_send_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SendRecord(dst=0, nbytes=-1)

    def test_recv_bad_src_rejected(self):
        with pytest.raises(ValueError):
            RecvRecord(src=-2)

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            CollectiveRecord("alltoallw")

    def test_all_collective_ops_constructible(self):
        for op in COLLECTIVE_OPS:
            assert CollectiveRecord(op).op == op

    def test_waitall_requests_coerced_to_tuple(self):
        rec = WaitallRecord(requests=[1, 2])
        assert rec.requests == (1, 2)

    def test_records_are_frozen(self):
        rec = ComputeBurst(1.0)
        with pytest.raises(AttributeError):
            rec.duration = 2.0


class TestDictRoundTrip:
    @pytest.mark.parametrize("record", ALL_RECORDS, ids=lambda r: r.kind)
    def test_round_trip_identity(self, record):
        assert record_from_dict(record_to_dict(record)) == record

    def test_kind_field_present(self):
        d = record_to_dict(SendRecord(dst=1, nbytes=2))
        assert d["kind"] == "send"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            record_from_dict({"kind": "teleport"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"duration": 1.0})
