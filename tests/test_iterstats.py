"""Unit tests for per-iteration statistics and the regularity check."""

import numpy as np
import pytest

from repro.apps import build_app
from repro.netsim.simulator import MpiSimulator
from repro.traces.iterstats import (
    is_regular,
    iteration_stats,
    per_iteration_compute_times,
)
from repro.traces.records import ComputeBurst, MarkerRecord
from repro.traces.trace import Trace


def marked_trace(matrix):
    """Build a trace whose (iterations x ranks) compute matrix is given."""
    niter, nproc = np.asarray(matrix).shape
    streams = []
    for rank in range(nproc):
        recs = []
        for it in range(niter):
            recs.append(MarkerRecord("iter", it))
            recs.append(ComputeBurst(float(matrix[it][rank])))
        streams.append(recs)
    return Trace.from_streams(streams)


class TestPerIterationTimes:
    def test_matrix_recovered(self):
        matrix = [[1.0, 2.0], [3.0, 4.0]]
        times = per_iteration_compute_times(marked_trace(matrix))
        assert times.tolist() == matrix

    def test_initialization_excluded(self):
        t = Trace.from_streams(
            [[ComputeBurst(99.0), MarkerRecord("iter", 0), ComputeBurst(1.0)]]
        )
        times = per_iteration_compute_times(t)
        assert times.tolist() == [[1.0]]

    def test_markerless_trace_rejected(self):
        t = Trace.from_streams([[ComputeBurst(1.0)]])
        with pytest.raises(ValueError, match="iteration markers"):
            per_iteration_compute_times(t)

    def test_disagreeing_ranks_rejected(self):
        t = Trace.from_streams(
            [
                [MarkerRecord("iter", 0), ComputeBurst(1.0)],
                [MarkerRecord("iter", 1), ComputeBurst(1.0)],
            ]
        )
        with pytest.raises(ValueError, match="disagree"):
            per_iteration_compute_times(t)


class TestIterationStats:
    def test_stationary_trace(self):
        stats = iteration_stats(marked_trace([[1.0, 2.0]] * 4))
        assert stats.iterations == 4
        assert stats.drift == pytest.approx(0.0, abs=1e-12)
        assert stats.max_rank_cv == pytest.approx(0.0)
        assert stats.lb_per_iteration.tolist() == pytest.approx([0.75] * 4)
        assert stats.lb_of_totals == pytest.approx(0.75)

    def test_rotating_load_detected_as_drift(self):
        matrix = [[2.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 2.0]]
        stats = iteration_stats(marked_trace(matrix))
        assert stats.drift > 0.5
        # per-iteration LB constant, totals perfectly balanced
        assert stats.lb_per_iteration.tolist() == pytest.approx([2 / 3] * 3)
        assert stats.lb_of_totals == pytest.approx(1.0)

    def test_noisy_rank_raises_cv(self):
        matrix = [[1.0, 1.0], [1.0, 3.0], [1.0, 1.0], [1.0, 3.0]]
        stats = iteration_stats(marked_trace(matrix))
        assert stats.max_rank_cv > 0.4

    def test_row_fields(self):
        row = iteration_stats(marked_trace([[1.0, 2.0]] * 2)).row()
        assert set(row) >= {"mean_iteration_lb_pct", "drift", "max_rank_cv"}


class TestIsRegular:
    def test_paper_skeletons_are_regular(self):
        app = build_app("MG-32", iterations=3)
        trace = MpiSimulator().run(app.programs(), record_trace=True).trace
        assert is_regular(trace)

    def test_drifting_skeleton_is_irregular(self):
        app = build_app("MG-32", iterations=4, drift_step=5)
        trace = MpiSimulator().run(app.programs(), record_trace=True).trace
        assert not is_regular(trace)

    def test_tolerances_respected(self):
        matrix = [[1.0, 1.0], [1.0, 1.04]]
        assert is_regular(marked_trace(matrix), cv_tol=0.05)
        assert not is_regular(marked_trace(matrix), cv_tol=0.001)
