"""Golden-results regression gate.

``golden_results.json`` snapshots the key reproduction numbers (Table 3
characteristics, Fig. 3 energies, Fig. 9 AVG results) at the committed
state of the models.  Any model/calibration change that moves them must
be deliberate: rerun the snapshot generator below and review the diff.

Regenerate with::

    python tests/regen_golden.py

The tolerance is tight (0.05 points) because everything in the pipeline
is deterministic — a golden mismatch is a real behaviour change, not
noise.
"""

import json
import pathlib

import pytest

from repro.experiments.runner import RunnerConfig, get_experiment

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_results.json"
TOL = 0.05  # percentage points


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def config(golden):
    return RunnerConfig(
        iterations=golden["config"]["iterations"],
        beta=golden["config"]["beta"],
    )


class TestGolden:
    def test_table3_stable(self, golden, config):
        result = get_experiment("table3")(config)
        for row in result.rows:
            lb, pe = golden["table3"][row["application"]]
            assert row["load_balance_pct"] == pytest.approx(lb, abs=TOL)
            assert row["parallel_efficiency_pct"] == pytest.approx(pe, abs=TOL)

    def test_fig3_energies_stable(self, golden, config):
        result = get_experiment("fig3")(config)
        for row in result.rows:
            expected = golden["fig3_energy_uniform6"][row["application"]]
            assert row["energy_uniform-6_pct"] == pytest.approx(expected, abs=TOL)

    def test_fig9_avg_stable(self, golden, config):
        result = get_experiment("fig9")(config)
        for row in result.rows:
            time, energy, oc = golden["fig9"][row["application"]]
            assert row["normalized_time_pct"] == pytest.approx(time, abs=TOL)
            assert row["normalized_energy_pct"] == pytest.approx(energy, abs=TOL)
            assert row["overclocked_pct"] == pytest.approx(oc, abs=TOL)

    def test_snapshot_covers_all_instances(self, golden):
        from repro.apps.registry import TABLE3_INSTANCES

        assert set(golden["table3"]) == set(TABLE3_INSTANCES)
