"""Shared fixtures for the test suite.

Small worlds and few iterations keep the full suite fast while covering
every code path; calibration-accuracy tests use the real Table 3 sizes.
"""

from __future__ import annotations

import pytest

from repro.apps import build_app
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import uniform_gear_set
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_dir(tmp_path_factory):
    """Point the default persistent cache at a throwaway directory so
    tests never read or write ``~/.cache/repro``."""
    import os

    path = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture()
def simulator() -> MpiSimulator:
    return MpiSimulator()


@pytest.fixture()
def fast_platform() -> PlatformConfig:
    """Zero-overhead platform: only explicit costs appear in timings."""
    return PlatformConfig(
        latency=0.0,
        bandwidth=1e9,
        send_overhead=0.0,
        recv_overhead=0.0,
        eager_threshold=1024,
        intra_node_speedup=1.0,
    )


@pytest.fixture()
def balancer() -> PowerAwareLoadBalancer:
    return PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))


@pytest.fixture(scope="session")
def btmz_trace():
    """A BT-MZ-32 trace shared by read-only tests (session-scoped)."""
    app = build_app("BT-MZ-32", iterations=3)
    balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
    return balancer.trace_app(app)


@pytest.fixture(scope="session")
def small_trace():
    """A small CG-8 trace for cheap structural tests."""
    app = build_app("CG-8", iterations=2)
    balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
    return balancer.trace_app(app)
