"""Unit tests for tabular/CSV/SVG reporting."""

import csv
import io

import pytest

from repro.experiments.report import bar_chart_svg, format_table, write_csv

ROWS = [
    {"app": "CG-32", "energy": 100.0, "flag": True},
    {"app": "IS-32", "energy": 44.71, "flag": False},
]


class TestFormatTable:
    def test_header_and_rows(self):
        text = format_table(["app", "energy"], ROWS, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "app" in lines[1] and "energy" in lines[1]
        assert "CG-32" in lines[3]
        assert "44.71" in lines[4]

    def test_missing_value_dash(self):
        text = format_table(["app", "other"], ROWS)
        assert "-" in text

    def test_decimals_control(self):
        text = format_table(["energy"], ROWS, decimals=0)
        assert "45" in text

    def test_bool_rendering(self):
        text = format_table(["flag"], ROWS)
        assert "yes" in text and "no" in text

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ["app", "energy"], ROWS)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["app"] == "CG-32"
        assert float(rows[1]["energy"]) == pytest.approx(44.71)

    def test_stream_output(self):
        buf = io.StringIO()
        write_csv(buf, ["app"], ROWS)
        assert buf.getvalue().splitlines()[0] == "app"

    def test_extra_keys_ignored(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ["app"], ROWS)
        header = path.read_text().splitlines()[0]
        assert header == "app"


class TestBarChart:
    def test_valid_svg(self):
        svg = bar_chart_svg(
            "demo", ["a", "b"], {"energy": [50.0, 100.0], "edp": [60.0, 90.0]}
        )
        assert svg.startswith("<svg")
        assert svg.count("<rect") >= 4 + 2  # bars + legend swatches
        assert "demo" in svg

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values"):
            bar_chart_svg("x", ["a", "b"], {"s": [1.0]})

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            bar_chart_svg("x", [], {"s": []})

    def test_category_labels_rendered(self):
        svg = bar_chart_svg("x", ["CG-32"], {"s": [1.0]})
        assert "CG-32" in svg


class TestHeatmap:
    def test_valid_svg(self):
        from repro.experiments.report import heatmap_svg

        svg = heatmap_svg([[0.0, 1.0], [2.0, 0.5]], title="traffic")
        assert svg.startswith("<svg")
        assert svg.count("<rect") == 4
        assert "traffic" in svg

    def test_rectangular_required(self):
        from repro.experiments.report import heatmap_svg

        with pytest.raises(ValueError):
            heatmap_svg([[1.0], [1.0, 2.0]])

    def test_negative_rejected(self):
        from repro.experiments.report import heatmap_svg

        with pytest.raises(ValueError):
            heatmap_svg([[-1.0]])

    def test_zero_matrix_all_white(self):
        from repro.experiments.report import heatmap_svg

        svg = heatmap_svg([[0.0, 0.0]])
        assert svg.count("#ffffff") == 2
