"""Unit tests for imbalance profiles and LB calibration."""

import numpy as np
import pytest

from repro.apps.imbalance import (
    bimodal_shape,
    calibrate,
    calibrate_phases,
    decay_shape,
    jitter_shape,
    load_balance_of,
    ramp_shape,
    seed_for,
    wave_shape,
    zone_shape,
)


class TestCalibrate:
    @pytest.mark.parametrize("target", [0.3, 0.5, 0.75, 0.9, 0.98])
    def test_hits_target_exactly(self, target):
        shape = decay_shape(64, rate=4.0)
        w = calibrate(shape, target)
        assert load_balance_of(w) == pytest.approx(target, abs=1e-12)

    def test_max_stays_one(self):
        w = calibrate(ramp_shape(32), 0.7)
        assert w.max() == pytest.approx(1.0)

    def test_target_one_gives_uniform(self):
        w = calibrate(ramp_shape(32), 1.0)
        assert (w == 1.0).all()

    def test_argmax_preserved(self):
        shape = jitter_shape(32, seed=7)
        w = calibrate(shape, 0.8)
        assert np.argmax(shape) == np.argmax(w)

    def test_unreachable_target_rejected(self):
        # min of shape is ~0; LB 0.01 would need negative weights
        with pytest.raises(ValueError, match="floor"):
            calibrate(ramp_shape(4), 0.05)

    def test_balanced_base_shape_rejected(self):
        with pytest.raises(ValueError, match="perfectly balanced"):
            calibrate(np.ones(8), 0.5)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate(ramp_shape(8), 0.0)
        with pytest.raises(ValueError):
            calibrate(ramp_shape(8), 1.5)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            calibrate(np.array([]), 0.5)
        with pytest.raises(ValueError):
            calibrate(np.array([-1.0, 1.0]), 0.5)
        with pytest.raises(ValueError):
            calibrate(np.zeros(4), 0.5)


class TestCalibratePhases:
    def test_total_lb_hits_target(self):
        # NB: *equal-weight* mirrored ramps sum to a constant (total LB
        # pinned at 1 for any blend), so use asymmetric phase durations.
        tree = ramp_shape(64, ascending=True)
        force = ramp_shape(64, ascending=False)
        w1, w2 = calibrate_phases([tree, force], [0.7, 0.3], target_lb=0.8)
        total = 0.7 * w1 + 0.3 * w2
        assert load_balance_of(total) == pytest.approx(0.8, abs=1e-6)

    def test_phases_keep_distinct_structure(self):
        tree = ramp_shape(64, ascending=True)
        force = ramp_shape(64, ascending=False)
        w1, w2 = calibrate_phases([tree, force], [0.7, 0.3], target_lb=0.8)
        # heavy ends differ between phases
        assert np.argmax(w1) != np.argmax(w2)

    def test_single_phase_equals_calibrate(self):
        shape = decay_shape(32, rate=2.0)
        (w_multi,) = calibrate_phases([shape], [1.0], target_lb=0.7)
        w_single = calibrate(shape, 0.7)
        assert w_multi == pytest.approx(w_single, abs=1e-6)

    def test_unreachable_target_rejected(self):
        near_flat = 1.0 - 0.01 * ramp_shape(16)
        with pytest.raises(ValueError, match="unreachable"):
            calibrate_phases([near_flat], [1.0], target_lb=0.3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            calibrate_phases([ramp_shape(8)], [0.5, 0.5], target_lb=0.8)


class TestShapes:
    def test_all_shapes_normalised_range(self):
        for shape in (
            ramp_shape(33),
            decay_shape(33),
            jitter_shape(33, seed=1),
            bimodal_shape(33, seed=2),
            wave_shape(33, seed=3),
            zone_shape(33),
        ):
            assert shape.shape == (33,)
            assert shape.max() <= 1.0 + 1e-12
            assert (shape >= 0.0).all()
            assert shape.max() > 0.0

    def test_ramp_direction(self):
        asc = ramp_shape(8, ascending=True)
        desc = ramp_shape(8, ascending=False)
        assert asc[0] < asc[-1]
        assert desc[0] > desc[-1]

    def test_single_rank_shapes(self):
        assert ramp_shape(1).tolist() == [1.0]
        assert decay_shape(1).tolist() == [1.0]

    def test_decay_monotone(self):
        d = decay_shape(16, rate=3.0)
        assert (np.diff(d) < 0).all()

    def test_zone_shape_blocks(self):
        z = zone_shape(16, zones=4, growth=2.0)
        # 4 distinct levels, 4 ranks each
        assert len(set(z.tolist())) == 4

    def test_bimodal_has_two_populations(self):
        b = bimodal_shape(40, seed=5, heavy_fraction=0.25, light_level=0.1)
        assert (b >= 0.8).sum() == 10
        assert (b == 0.1).sum() == 30

    def test_seeded_shapes_deterministic(self):
        assert jitter_shape(16, seed=9).tolist() == jitter_shape(16, seed=9).tolist()
        assert (bimodal_shape(16, seed=9) == bimodal_shape(16, seed=9)).all()

    def test_seed_for_is_stable(self):
        assert seed_for("CG-32") == seed_for("CG-32")
        assert seed_for("CG-32") != seed_for("CG-64")

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ramp_shape(0)
        with pytest.raises(ValueError):
            decay_shape(8, rate=0.0)
        with pytest.raises(ValueError):
            bimodal_shape(8, seed=0, heavy_fraction=0.0)
        with pytest.raises(ValueError):
            zone_shape(0)


class TestLoadBalanceOf:
    def test_definition(self):
        assert load_balance_of(np.array([1.0, 0.5])) == pytest.approx(0.75)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            load_balance_of(np.zeros(3))
