"""Fleet-mode tests: hash ring, peer cache, router, graceful drain.

Most tests run an in-process fleet — N :class:`ServiceThread` replicas
(each on its own event loop, with a gated executor where determinism
matters) behind a :class:`RouterThread` — so the real HTTP stack and
the real routing/drain machinery are exercised without subprocess
spawn costs.  One suite (:class:`TestSupervisor`) spawns the genuine
``repro serve`` subprocess fleet to cover process supervision itself.
"""

import json
import pickle
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.cache import ResultCache, cache_key, frame_blob
from repro.service import RouterConfig, RouterThread, ServiceConfig, ServiceThread
from repro.service.metrics import inject_label, merge_expositions
from repro.service.peercache import PeerResultCache, valid_cache_key
from repro.service.router import HashRing
from repro.service.workers import execute_balance

from tests.test_service import SPEC, GatedExecutor, wait_for


#: Fleet-shared peer-cache secret used by every in-process harness.
SECRET = "fleet-test-secret"


def _free_ports(n: int) -> list[int]:
    """Distinct bindable ports, reserved by a momentary bind."""
    ports = []
    socks = []
    for _ in range(n):
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        socks.append(s)
        ports.append(s.getsockname()[1])
    for s in socks:
        s.close()
    return ports


class Fleet:
    """N in-process replicas (peer-wired) behind a front router."""

    def __init__(self, tmp_path, n, executor_factory=None, **overrides):
        ports = _free_ports(n)
        addrs = [f"127.0.0.1:{p}" for p in ports]
        self.replicas = []
        self.executors = []
        for i, port in enumerate(ports):
            executor = (
                executor_factory() if executor_factory
                else ThreadPoolExecutor(2)
            )
            self.executors.append(executor)
            config = ServiceConfig(
                port=port,
                workers=2,
                cache_dir=str(tmp_path / f"replica-{i}"),
                replica_name=f"replica-{i}",
                peers=tuple(a for a in addrs if a != addrs[i]),
                peer_secret=SECRET,
                **overrides,
            )
            self.replicas.append(ServiceThread(config, executor=executor))
        self.router = RouterThread(
            RouterConfig(replicas=tuple(addrs), health_interval=0.05)
        )

    def start(self):
        for replica in self.replicas:
            replica.start()
        self.router.start()
        wait_for(lambda: len(self.router.router.ring.nodes)
                 == len(self.replicas))
        return self

    def stop(self):
        self.router.stop()
        for replica in self.replicas:
            replica.stop()

    @property
    def client(self):
        return self.router.client

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------

class TestHashRing:
    def test_lookup_is_deterministic_and_member(self):
        ring = HashRing()
        ring.set_nodes(["a:1", "b:2", "c:3"])
        keys = [f"report-{i:064x}" for i in range(200)]
        owners = [ring.lookup(k) for k in keys]
        assert owners == [ring.lookup(k) for k in keys]
        assert set(owners) <= {"a:1", "b:2", "c:3"}

    def test_distribution_roughly_even(self):
        ring = HashRing(vnodes=64)
        ring.set_nodes(["a:1", "b:2", "c:3"])
        counts = {"a:1": 0, "b:2": 0, "c:3": 0}
        for i in range(3000):
            counts[ring.lookup(f"key-{i}")] += 1
        for n in counts.values():
            assert 500 < n < 1700  # no node starved or dominant

    def test_node_removal_only_moves_its_share(self):
        ring = HashRing()
        ring.set_nodes(["a:1", "b:2", "c:3"])
        keys = [f"key-{i}" for i in range(1000)]
        before = {k: ring.lookup(k) for k in keys}
        ring.set_nodes(["a:1", "b:2"])
        moved = sum(
            1 for k in keys
            if before[k] != ring.lookup(k) and before[k] != "c:3"
        )
        assert moved == 0  # only c's keys may move
        assert all(ring.lookup(k) != "c:3" for k in keys)

    def test_rebalance_counter_and_empty_ring(self):
        ring = HashRing()
        assert ring.lookup("anything") is None
        assert ring.set_nodes(["a:1"]) is True
        assert ring.set_nodes(["a:1"]) is False  # no change, no count
        assert ring.set_nodes([]) is True
        assert ring.rebalances == 2
        assert ring.lookup("anything") is None


# ----------------------------------------------------------------------
# Exposition merging
# ----------------------------------------------------------------------

class TestExpositionMerge:
    def test_inject_label_bare_and_labelled(self):
        assert inject_label("foo 3", "replica", "r0") == \
            'foo{replica="r0"} 3'
        assert inject_label('foo{a="b"} 3', "replica", "r0") == \
            'foo{replica="r0",a="b"} 3'
        assert inject_label("# HELP foo x", "replica", "r0") == \
            "# HELP foo x"

    def test_merge_emits_headers_once(self):
        text = (
            "# HELP foo help\n# TYPE foo counter\nfoo 1\n"
        )
        merged = merge_expositions({"r0": text, "r1": text})
        assert merged.count("# HELP foo help") == 1
        assert 'foo{replica="r0"} 1' in merged
        assert 'foo{replica="r1"} 1' in merged


# ----------------------------------------------------------------------
# Peer cache (unit level, no HTTP)
# ----------------------------------------------------------------------

class _StubClient:
    def __init__(self, blobs):
        self.blobs = blobs
        self.put = {}

    def get_blob(self, key):
        return self.blobs.get(key)

    def put_blob(self, key, blob):
        self.put[key] = blob
        return True


class TestPeerResultCache:
    def test_valid_cache_key(self):
        good = "report-" + "0" * 64
        assert valid_cache_key(good)
        assert valid_cache_key("balance-batch-" + "a" * 64)
        assert not valid_cache_key("report-" + "0" * 63)
        assert not valid_cache_key("../../etc/passwd")
        assert not valid_cache_key("Report-" + "0" * 64)

    def test_local_hit_never_touches_peers(self, tmp_path):
        local = ResultCache(tmp_path)
        local.put("report", {"x": 1}, {"answer": 42})
        peer = PeerResultCache(local, ["127.0.0.1:1"])
        value, source = peer.fetch("report", {"x": 1})
        assert value == {"answer": 42}
        assert source == "hit"
        assert peer.peer_hits == peer.peer_misses == 0

    def test_peer_hit_persists_locally(self, tmp_path):
        local = ResultCache(tmp_path / "a")
        peer = PeerResultCache(local, [])
        key = cache_key("report", {"x": 2})
        blob = frame_blob(pickle.dumps({"answer": 7}))
        peer.clients = [_StubClient({key: blob})]
        value, source = peer.fetch("report", {"x": 2})
        assert value == {"answer": 7}
        assert source == "peer"
        assert peer.peer_hits == 1
        # read-through persisted: next fetch is a local hit
        value2, source2 = peer.fetch("report", {"x": 2})
        assert (value2, source2) == ({"answer": 7}, "hit")

    def test_torn_peer_blob_is_counted_not_trusted(self, tmp_path):
        local = ResultCache(tmp_path / "a")
        peer = PeerResultCache(local, [])
        key = cache_key("report", {"x": 3})
        good = frame_blob(pickle.dumps({"ok": True}))
        peer.clients = [
            _StubClient({key: good[:-3]}),   # truncated
            _StubClient({key: good}),        # healthy sibling
        ]
        value, source = peer.fetch("report", {"x": 3})
        assert value == {"ok": True}
        assert source == "peer"
        assert peer.peer_corrupt == 1

    def test_fleet_wide_miss(self, tmp_path):
        local = ResultCache(tmp_path / "a")
        peer = PeerResultCache(local, [])
        peer.clients = [_StubClient({})]
        value, source = peer.fetch("report", {"x": 4})
        assert (value, source) == (None, None)
        assert peer.peer_misses == 1

    def test_unreachable_peer_is_a_miss(self, tmp_path):
        local = ResultCache(tmp_path / "a")
        # nothing listens on this port: OSError -> miss, not crash
        peer = PeerResultCache(local, ["127.0.0.1:1"], timeout=0.2)
        value, source = peer.fetch("report", {"x": 5})
        assert (value, source) == (None, None)


# ----------------------------------------------------------------------
# Cache blob endpoints (the peer wire protocol over real HTTP)
# ----------------------------------------------------------------------

class TestCacheEndpoints:
    def test_put_get_roundtrip(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_dir=str(tmp_path / "c"), peer_secret=SECRET
        )
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            key = cache_key("report", {"payload": 1})
            blob = frame_blob(pickle.dumps({"v": 1}))
            put = svc.client.cache_put(key, blob, secret=SECRET)
            assert put.status == 200
            assert put.json()["stored"] == key
            got = svc.client.cache_get(key, secret=SECRET)
            assert got.status == 200
            assert got.body == blob

    def test_torn_put_rejected_and_nothing_stored(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_dir=str(tmp_path / "c"), peer_secret=SECRET
        )
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            key = cache_key("report", {"payload": 2})
            blob = frame_blob(pickle.dumps({"v": 2}))
            assert svc.client.cache_put(
                key, blob[:-1], secret=SECRET
            ).status == 400
            assert svc.client.cache_get(key, secret=SECRET).status == 404

    def test_malformed_key_rejected(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_dir=str(tmp_path / "c"), peer_secret=SECRET
        )
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            assert svc.client.cache_get(
                "report-zz", secret=SECRET
            ).status == 400
            assert svc.client.cache_put(
                "report-zz", b"RPRC", secret=SECRET
            ).status == 400


class TestCacheEndpointGating:
    """The blob endpoints are fleet-internal; see REVIEW hardening."""

    def test_solo_replica_has_no_cache_routes(self, tmp_path):
        # no peers, no secret: the endpoints do not exist at all
        config = ServiceConfig(port=0, cache_dir=str(tmp_path / "c"))
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            key = cache_key("report", {"payload": 1})
            blob = frame_blob(pickle.dumps({"v": 1}))
            assert svc.client.cache_put(key, blob).status == 404
            assert svc.client.cache_get(key).status == 404

    def test_secret_required_when_configured(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_dir=str(tmp_path / "c"), peer_secret=SECRET
        )
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            key = cache_key("report", {"payload": 1})
            blob = frame_blob(pickle.dumps({"v": 1}))
            # missing and wrong secrets are refused before any
            # key/frame validation could leak information
            assert svc.client.cache_put(key, blob).status == 403
            assert svc.client.cache_get(key).status == 403
            assert svc.client.cache_put(
                key, blob, secret="wrong"
            ).status == 403
            assert svc.client.cache_get(key, secret="wrong").status == 403
            # nothing was stored by the refused PUTs
            assert svc.client.cache_get(key, secret=SECRET).status == 404

    def test_secret_gates_even_with_peers_configured(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_dir=str(tmp_path / "c"),
            peers=("127.0.0.1:1",), peer_secret=SECRET,
        )
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            key = cache_key("report", {"payload": 1})
            assert svc.client.cache_get(key).status == 403

    def test_router_never_routes_cache_traffic(self, tmp_path):
        with Fleet(tmp_path, 2) as fleet:
            key = cache_key("report", {"payload": 1})
            blob = frame_blob(pickle.dumps({"v": 1}))
            # even with the fleet secret, the router's client port
            # refuses the path outright
            assert fleet.client.cache_get(key, secret=SECRET).status == 404
            assert fleet.client.cache_put(
                key, blob, secret=SECRET
            ).status == 404
            assert fleet.client.cache_get(key).status == 404


# ----------------------------------------------------------------------
# Malformed HTTP framing (raw sockets; http.client refuses to send it)
# ----------------------------------------------------------------------

def _raw_http(port: int, data: bytes, timeout: float = 15.0) -> bytes:
    """One raw request/response exchange against 127.0.0.1:port."""
    with socket.create_connection(("127.0.0.1", port), timeout) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            try:
                chunk = sock.recv(65536)
            except (ConnectionResetError, socket.timeout):
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


_NEGATIVE_LENGTH = (
    b"POST /v1/balance HTTP/1.1\r\n"
    b"Host: t\r\n"
    b"Content-Length: -5\r\n\r\n"
)
#: One header line past asyncio's 64 KiB readline limit, which used to
#: surface as an unhandled ValueError instead of a 400.
_OVERSIZED_HEADER = (
    b"GET /healthz HTTP/1.1\r\n"
    b"Host: t\r\n"
    b"X-Big: " + b"a" * 70_000 + b"\r\n\r\n"
)


class TestRequestFraming:
    def test_replica_answers_negative_content_length_with_400(
        self, tmp_path
    ):
        config = ServiceConfig(port=0, cache_dir=str(tmp_path / "c"))
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            raw = _raw_http(svc.port, _NEGATIVE_LENGTH)
            assert raw.startswith(b"HTTP/1.1 400 ")
            assert b"invalid-request" in raw

    def test_replica_answers_oversized_header_with_400(self, tmp_path):
        config = ServiceConfig(port=0, cache_dir=str(tmp_path / "c"))
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            raw = _raw_http(svc.port, _OVERSIZED_HEADER)
            assert raw.startswith(b"HTTP/1.1 400 ")

    def test_router_answers_bad_framing_with_400(self, tmp_path):
        with Fleet(tmp_path, 1) as fleet:
            raw = _raw_http(fleet.router.port, _NEGATIVE_LENGTH)
            assert raw.startswith(b"HTTP/1.1 400 ")
            raw = _raw_http(fleet.router.port, _OVERSIZED_HEADER)
            assert raw.startswith(b"HTTP/1.1 400 ")


# ----------------------------------------------------------------------
# Liveness vs readiness
# ----------------------------------------------------------------------

class TestReadiness:
    def test_livez_always_alive_healthz_gates_traffic(self, tmp_path):
        config = ServiceConfig(port=0, cache_dir=str(tmp_path / "c"))
        with ServiceThread(config, executor=ThreadPoolExecutor(2)) as svc:
            live = svc.client.request("GET", "/livez")
            assert live.status == 200
            assert live.json() == {"status": "alive", "draining": False}
            ready = svc.client.request("GET", "/healthz")
            assert ready.status == 200
            assert ready.json()["status"] == "ok"

    def test_draining_replica_503s_healthz_but_stays_alive(self, tmp_path):
        gate = GatedExecutor()
        config = ServiceConfig(port=0, cache_dir=str(tmp_path / "c"))
        svc = ServiceThread(config, executor=gate).start()
        r = svc.client.balance(
            app="CG-16", iterations=2, **{"async": True}
        )
        assert r.status == 202
        stopper = threading.Thread(target=svc.stop)
        stopper.start()
        try:
            wait_for(
                lambda: svc.client.request("GET", "/healthz").status == 503
            )
            health = svc.client.request("GET", "/healthz")
            assert health.json()["status"] == "draining"
            assert health.headers["Retry-After"] == "1"
            live = svc.client.request("GET", "/livez")
            assert live.status == 200
            assert live.json()["draining"] is True
            # new compute is rejected with backpressure semantics
            rejected = svc.client.balance(app="CG-16", iterations=2)
            assert rejected.status == 503
            assert rejected.headers["Retry-After"] == "1"
        finally:
            gate.gate.set()
            stopper.join(timeout=60)
        assert not stopper.is_alive()


# ----------------------------------------------------------------------
# Routed fleet behaviour
# ----------------------------------------------------------------------

class TestRoutedFleet:
    def test_byte_identity_through_router(self, tmp_path):
        report, _runner = execute_balance(dict(SPEC))
        expected = (
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode()
        with Fleet(tmp_path, 3) as fleet:
            r = fleet.client.balance(**SPEC)
            assert r.status == 200
            assert r.body == expected
            assert r.headers["X-Repro-Replica"].startswith("replica-")

    def test_identical_bodies_stick_to_one_replica(self, tmp_path):
        with Fleet(tmp_path, 3) as fleet:
            seen = {
                fleet.client.balance(
                    app="CG-16", iterations=2
                ).headers["X-Repro-Replica"]
                for _ in range(5)
            }
            assert len(seen) == 1
            # second request onward is a warm hit on the owner
            assert fleet.client.balance(
                app="CG-16", iterations=2
            ).headers["X-Cache"] == "hit"

    def test_validation_error_still_canonical_through_router(
        self, tmp_path
    ):
        with Fleet(tmp_path, 2) as fleet:
            r = fleet.client.balance(app="not-an-app")
            assert r.status == 400
            assert r.json()["error"]["code"] == "invalid-request"

    def test_forwarded_request_pushes_blob_to_owner(self, tmp_path):
        """A replica handling an off-ring request warms the ring owner."""
        ports = _free_ports(2)
        addrs = [f"127.0.0.1:{p}" for p in ports]
        owner = ServiceThread(ServiceConfig(
            port=ports[0], cache_dir=str(tmp_path / "owner"),
            replica_name="owner", peers=(addrs[1],), peer_secret=SECRET,
        ), executor=ThreadPoolExecutor(2))
        handler = ServiceThread(ServiceConfig(
            port=ports[1], cache_dir=str(tmp_path / "handler"),
            replica_name="handler", peers=(addrs[0],), peer_secret=SECRET,
        ), executor=ThreadPoolExecutor(2))
        with owner, handler:
            r = handler.client.request(
                "POST", "/v1/balance",
                payload={"app": "CG-16", "iterations": 2},
                headers={"X-Repro-Forwarded-From": addrs[0]},
            )
            assert r.status == 200
            assert r.headers["X-Cache"] == "miss"
            # the push is fire-and-forget; the owner converges to a
            # local hit without ever computing
            wait_for(
                lambda: owner.client.balance(
                    app="CG-16", iterations=2
                ).headers["X-Cache"] == "hit",
                timeout=10,
            )
            metrics = handler.client.metrics()
            assert "repro_service_peer_cache_pushes_total 1" in metrics

    def test_peer_read_through_over_http(self, tmp_path):
        """Replica B serves a body only replica A ever computed."""
        ports = _free_ports(2)
        addrs = [f"127.0.0.1:{p}" for p in ports]
        a = ServiceThread(ServiceConfig(
            port=ports[0], cache_dir=str(tmp_path / "a"),
            replica_name="a", peers=(addrs[1],), peer_secret=SECRET,
        ), executor=ThreadPoolExecutor(2))
        b = ServiceThread(ServiceConfig(
            port=ports[1], cache_dir=str(tmp_path / "b"),
            replica_name="b", peers=(addrs[0],), peer_secret=SECRET,
        ), executor=ThreadPoolExecutor(2))
        with a, b:
            first = a.client.balance(app="CG-16", iterations=2)
            assert first.headers["X-Cache"] == "miss"
            via_peer = b.client.balance(app="CG-16", iterations=2)
            assert via_peer.headers["X-Cache"] == "peer"
            assert via_peer.body == first.body
            # persisted locally: B now answers from its own disk
            assert b.client.balance(
                app="CG-16", iterations=2
            ).headers["X-Cache"] == "hit"
            metrics = b.client.metrics()
            assert "repro_service_peer_cache_hits_total 1" in metrics

    def test_router_aggregates_health_and_metrics(self, tmp_path):
        with Fleet(tmp_path, 2) as fleet:
            health = fleet.client.healthz()
            assert health["status"] == "ok"
            assert health["fleet"]["replicas"] == 2
            assert health["fleet"]["ready"] == 2
            assert set(health["replicas"]) == {"replica-0", "replica-1"}
            metrics = fleet.client.metrics()
            assert 'replica="replica-0"' in metrics
            assert 'replica="replica-1"' in metrics
            assert "repro_router_ring_rebalances_total" in metrics
            assert "repro_router_ready_replicas 2" in metrics


# ----------------------------------------------------------------------
# Fleet-wide graceful drain (satellite c)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 3])
class TestFleetDrain:
    def test_drain_completes_inflight_async_jobs(self, tmp_path, n):
        fleet = Fleet(
            tmp_path, n, executor_factory=GatedExecutor,
            drain_linger=2.0,
        ).start()
        try:
            scalar = fleet.client.balance(
                app="CG-16", iterations=2, **{"async": True}
            )
            batch = fleet.client.balance(
                app="CG-16", iterations=2,
                candidates=[{"gears": "uniform:4"}, {"algorithm": "avg"}],
                **{"async": True},
            )
            assert scalar.status == 202
            assert batch.status == 202
            scalar_id = scalar.json()["job"]["id"]
            batch_id = batch.json()["job"]["id"]

            stoppers = [
                threading.Thread(target=r.stop) for r in fleet.replicas
            ]
            for s in stoppers:
                s.start()
            # replicas leave the ring; new work is rejected with a
            # Retry-After while the fleet drains
            wait_for(lambda: not fleet.router.router.any_ready, timeout=30)
            rejected = fleet.client.balance(app="CG-16", iterations=2)
            assert rejected.status == 503
            assert rejected.headers["Retry-After"] == "1"

            for executor in fleet.executors:
                executor.gate.set()
            # 202-polling clients observe terminal states through the
            # router during the drain-linger window
            jobs = {}
            deadline = time.monotonic() + 30
            while len(jobs) < 2 and time.monotonic() < deadline:
                for job_id in (scalar_id, batch_id):
                    if job_id in jobs:
                        continue
                    r = fleet.client.job(job_id)
                    if r.status == 200 and r.json()["job"]["status"] in (
                        "done", "failed"
                    ):
                        jobs[job_id] = r.json()["job"]
                time.sleep(0.05)
            for s in stoppers:
                s.join(timeout=60)
            assert len(jobs) == 2, "jobs never reached a terminal state"
            assert jobs[scalar_id]["status"] == "done"
            assert jobs[batch_id]["status"] == "done"
            assert jobs[batch_id]["result"]["count"] == 2
        finally:
            for executor in fleet.executors:
                executor.gate.set()
            fleet.stop()

    def test_drain_rejects_new_async_submissions(self, tmp_path, n):
        fleet = Fleet(
            tmp_path, n, executor_factory=GatedExecutor, drain_linger=1.0
        ).start()
        try:
            replica = fleet.replicas[0]
            held = replica.client.balance(
                app="CG-16", iterations=2, **{"async": True}
            )
            assert held.status == 202
            stopper = threading.Thread(target=replica.stop)
            stopper.start()
            wait_for(lambda: replica.app.draining, timeout=30)
            r = replica.client.balance(
                app="CG-16", iterations=3, **{"async": True}
            )
            assert r.status == 503
            assert r.headers["Retry-After"] == "1"
            assert r.json()["error"]["code"] == "shutting-down"
            fleet.executors[0].gate.set()
            stopper.join(timeout=60)
            assert not stopper.is_alive()
        finally:
            for executor in fleet.executors:
                executor.gate.set()
            fleet.stop()


# ----------------------------------------------------------------------
# Real subprocess supervision
# ----------------------------------------------------------------------

class TestSupervisor:
    def test_fleet_of_two_serves_and_drains(self, tmp_path):
        from repro.service import FleetConfig, FleetThread

        config = FleetConfig(
            port=0, replicas=2, workers=1,
            cache_dir=str(tmp_path / "fleet"), drain_linger=0.2,
        )
        with FleetThread(config) as fleet:
            wait_for(
                lambda: fleet.client.healthz()["fleet"]["ready"] == 2,
                timeout=120,
            )
            first = fleet.client.balance(app="CG-16", iterations=2)
            assert first.status == 200
            again = fleet.client.balance(app="CG-16", iterations=2)
            assert again.status == 200
            assert again.headers["X-Cache"] == "hit"
            assert again.body == first.body
            metrics = fleet.client.metrics()
            assert "repro_fleet_replica_restarts_total" in metrics
            assert "repro_fleet_replicas_alive 2" in metrics
            # the generated fleet secret reached the replica (via env):
            # unauthenticated blob access is refused on the replica
            # port, the fleet secret gets through, and the router's
            # client port never routes the path at all
            from repro.service.client import ServiceClient

            replica = ServiceClient(
                "127.0.0.1", fleet.supervisor.replicas[0].port
            )
            key = cache_key("report", {"x": 1})
            assert replica.cache_get(key).status == 403
            assert replica.cache_get(
                key, secret=fleet.supervisor.peer_secret
            ).status == 404
            assert fleet.client.cache_get(
                key, secret=fleet.supervisor.peer_secret
            ).status == 404
        # context exit drains: replica processes must be gone
        assert all(not r.alive for r in fleet.supervisor.replicas)

    def test_crashed_replica_is_restarted(self, tmp_path):
        from repro.service import FleetConfig, FleetThread

        config = FleetConfig(
            port=0, replicas=1, workers=1,
            cache_dir=str(tmp_path / "fleet"), drain_linger=0.1,
        )
        with FleetThread(config) as fleet:
            wait_for(
                lambda: fleet.client.healthz()["fleet"]["ready"] == 1,
                timeout=120,
            )
            replica = fleet.supervisor.replicas[0]
            replica.proc.kill()
            wait_for(lambda: replica.restarts >= 1, timeout=30)
            wait_for(
                lambda: replica.alive
                and fleet.client.healthz()["fleet"]["ready"] == 1,
                timeout=120,
            )
            # the ring re-admits the replica on the next poll tick
            wait_for(lambda: fleet.supervisor.router.any_ready, timeout=30)
            assert fleet.client.balance(
                app="CG-16", iterations=2
            ).status == 200
            metrics = fleet.client.metrics()
            assert (
                'repro_fleet_replica_restarts_total{replica="replica-0"} 1'
                in metrics
            )
