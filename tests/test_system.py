"""Unit tests for the whole-system energy model."""

import pytest

from repro.apps import build_app
from repro.core.algorithms import AvgAlgorithm, MaxAlgorithm
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import uniform_gear_set
from repro.core.power import CpuPowerModel
from repro.core.system import SystemPowerModel
from repro.experiments.fig9 import avg_discrete_set


class TestModel:
    def test_rest_of_node_from_cpu_fraction(self):
        model = SystemPowerModel(cpu_fraction=0.5)
        assert model.rest_of_node_power == pytest.approx(
            model.cpu_model.reference_power()
        )

    def test_fraction_one_means_no_rest(self):
        model = SystemPowerModel(cpu_fraction=1.0)
        assert model.rest_of_node_power == 0.0

    def test_smaller_cpu_fraction_more_rest_power(self):
        low = SystemPowerModel(cpu_fraction=0.45)
        high = SystemPowerModel(cpu_fraction=0.55)
        assert low.rest_of_node_power > high.rest_of_node_power

    def test_system_energy_formula(self):
        model = SystemPowerModel(cpu_fraction=0.5)
        e = model.system_energy(cpu_energy=10.0, execution_time=2.0, nproc=4)
        assert e == pytest.approx(10.0 + model.rest_of_node_power * 8.0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            SystemPowerModel(cpu_fraction=0.0)
        with pytest.raises(ValueError):
            SystemPowerModel(cpu_fraction=1.5)

    def test_bad_energy_args_rejected(self):
        model = SystemPowerModel()
        with pytest.raises(ValueError):
            model.system_energy(-1.0, 1.0, 1)
        with pytest.raises(ValueError):
            model.system_energy(1.0, 1.0, 0)

    def test_custom_cpu_model_propagates(self):
        pm = CpuPowerModel(static_fraction=0.4)
        model = SystemPowerModel(cpu_model=pm, cpu_fraction=0.5)
        assert model.rest_of_node_power == pytest.approx(pm.reference_power())


class TestView:
    @pytest.fixture(scope="class")
    def reports(self):
        trace = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).trace_app(
            build_app("SPECFEM3D-96", iterations=2)
        )
        rmax = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace, algorithm=MaxAlgorithm()
        )
        ravg = PowerAwareLoadBalancer(gear_set=avg_discrete_set()).balance_trace(
            trace, algorithm=AvgAlgorithm()
        )
        return rmax, ravg

    def test_system_normalization_between_cpu_and_time(self, reports):
        """System energy normalization interpolates CPU energy and time."""
        rmax, _ = reports
        view = SystemPowerModel(cpu_fraction=0.5).view(rmax)
        lo = min(rmax.normalized_energy, rmax.normalized_time)
        hi = max(rmax.normalized_energy, rmax.normalized_time)
        assert lo - 1e-9 <= view.normalized_system_energy <= hi + 1e-9

    def test_avg_gains_on_system_energy(self, reports):
        """The paper's closing argument: AVG's time cut pays off at the
        system level even though MAX wins on CPU energy alone."""
        rmax, ravg = reports
        model = SystemPowerModel(cpu_fraction=0.45)
        gap_cpu = ravg.normalized_energy - rmax.normalized_energy
        gap_system = (
            model.view(ravg).normalized_system_energy
            - model.view(rmax).normalized_system_energy
        )
        assert gap_cpu > 0  # MAX better on CPU energy
        assert gap_system < gap_cpu  # AVG closes the gap at system level

    def test_row_fields(self, reports):
        rmax, _ = reports
        row = SystemPowerModel().view(rmax).row()
        assert set(row) >= {
            "normalized_system_energy",
            "normalized_system_edp",
            "normalized_time",
        }
