"""Cross-module integration tests: full pipelines, format interop,
and the equivalence of the two frequency-scaling paths.
"""

import subprocess
import sys

import pytest

from repro.apps import build_app
from repro.core.algorithms import MaxAlgorithm
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import uniform_gear_set
from repro.core.timemodel import BetaTimeModel
from repro.netsim.simulator import MpiSimulator
from repro.traces.analysis import compute_times
from repro.traces.jsonio import read_trace, write_trace
from repro.traces.prv import parse_prv, write_prv
from repro.traces.transform import cut_iterations, scale_compute


class TestScalingPathEquivalence:
    """The paper rewrites the tracefile; the simulator can also scale
    at replay time.  Both paths must produce identical timings."""

    def test_trace_rewrite_equals_simulator_frequencies(self, btmz_trace):
        model = BetaTimeModel(fmax=2.3, beta=0.5)
        sim = MpiSimulator(time_model=model)
        assignment = MaxAlgorithm().assign(
            compute_times(btmz_trace), uniform_gear_set(6), model
        )
        freqs = assignment.frequencies

        rewritten = sim.run_trace(scale_compute(btmz_trace, freqs, model))
        direct = sim.run_trace(btmz_trace, frequencies=freqs)

        assert rewritten.execution_time == pytest.approx(direct.execution_time)
        assert rewritten.compute_times == pytest.approx(direct.compute_times)


class TestRegionCutting:
    def test_balancing_one_iteration_matches_full_trace(self, btmz_trace):
        """The paper cuts one iterative region; by regularity, balancing
        the cut must give the same normalized results as the full trace."""
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        full = balancer.balance_trace(btmz_trace)
        cut = balancer.balance_trace(cut_iterations(btmz_trace, 1, 1))
        assert cut.normalized_energy == pytest.approx(
            full.normalized_energy, rel=0.02
        )
        assert cut.load_balance == pytest.approx(full.load_balance, abs=0.01)


class TestPersistencePipeline:
    def test_trace_file_round_trip_preserves_balance_results(
        self, btmz_trace, tmp_path, balancer
    ):
        path = tmp_path / "t.jsonl.gz"
        write_trace(btmz_trace, path)
        reloaded = read_trace(path)
        r1 = balancer.balance_trace(btmz_trace)
        r2 = balancer.balance_trace(reloaded)
        assert r1.normalized_energy == pytest.approx(r2.normalized_energy)
        assert r1.new_time == pytest.approx(r2.new_time)

    def test_prv_export_of_balanced_run(self, btmz_trace, balancer, tmp_path):
        report = balancer.balance_trace(btmz_trace)
        original, modified = balancer.replay_pair(btmz_trace, report.assignment)
        path = tmp_path / "after.prv"
        write_prv(modified, path)
        prv = parse_prv(path)
        assert prv.nproc == btmz_trace.nproc
        total_compute = sum(
            prv.state_time(r, "compute") for r in range(prv.nproc)
        )
        assert total_compute == pytest.approx(
            float(modified.compute_times.sum()), rel=1e-6
        )


class TestEndToEndShapes:
    def test_full_pipeline_for_every_family_small(self):
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        for family in ("CG", "MG", "IS", "BT-MZ", "SPECFEM3D", "WRF", "PEPC"):
            report = balancer.balance_app(build_app(f"{family}-16", iterations=2))
            assert 0.0 < report.normalized_energy <= 1.05
            assert report.normalized_time < 1.3

    def test_savings_ordering_tracks_imbalance(self):
        """Fig. 3's essence on fresh skeletons: lower LB -> lower energy."""
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        reports = [
            balancer.balance_app(build_app(name, iterations=2))
            for name in ("BT-MZ-32", "SPECFEM3D-96", "MG-64", "CG-32")
        ]
        lbs = [r.load_balance for r in reports]
        energies = [r.normalized_energy for r in reports]
        assert lbs == sorted(lbs)
        assert energies == sorted(energies)


class TestExamplesRun:
    """The shipped examples are part of the public API surface."""

    @pytest.mark.parametrize(
        "script,args",
        [
            ("quickstart.py", []),
            ("gear_set_design.py", ["CG-16"]),
            ("cluster_scaling.py", ["MG", "--sizes", "16,32"]),
            ("custom_app.py", []),
            ("dynamic_runtimes.py", []),
            ("topology_study.py", ["WRF-16"]),
        ],
    )
    def test_example_runs_clean(self, script, args, tmp_path):
        import os
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        cmd = [sys.executable, str(root / "examples" / script), *args]
        if script == "gear_set_design.py":
            cmd += ["--svg", str(tmp_path / "out.svg")]
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600, cwd=tmp_path,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()
