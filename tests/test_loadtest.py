"""Unit tests for the load generator (``benchmarks/loadtest.py``).

The generator is measurement harness for the service fleet, so it gets
the same treatment as product code: seeded determinism, report math,
and both driving modes exercised against a stdlib stub server (the
real-fleet integration lives in ``benchmarks/bench_loadtest.py``).
"""

from __future__ import annotations

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from benchmarks.loadtest import (
    LoadReport,
    RequestMix,
    Stage,
    _parse_stages,
    main,
    run_closed_loop,
    run_open_loop,
    schedule_arrivals,
)


class _StubHandler(BaseHTTPRequestHandler):
    """Answers every POST with a canned JSON body and an X-Cache header."""

    protocol_version = "HTTP/1.1"

    def do_POST(self):  # noqa: N802 (stdlib handler naming)
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length)
        self.server.seen.append(json.loads(body))  # type: ignore[attr-defined]
        reply = b'{"ok": true}'
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(reply)))
        self.send_header("X-Cache", "hit")
        self.end_headers()
        self.wfile.write(reply)

    def log_message(self, *args):  # silence per-request stderr noise
        pass


@pytest.fixture()
def stub_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    server.seen = []  # type: ignore[attr-defined]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def _url(server) -> str:
    host, port = server.server_address
    return f"http://{host}:{port}"


class TestRequestMix:
    def test_bodies_are_deterministic_per_seed(self):
        mix = RequestMix()
        a = [mix.body(random.Random(3)) for _ in range(5)]
        b = [mix.body(random.Random(3)) for _ in range(5)]
        assert a == b

    def test_kinds_shape_the_body(self):
        rng = random.Random(0)
        batch = RequestMix({"batch": 1.0}).body(rng)
        assert "candidates" in batch
        assert all(set(c) == {"gears"} for c in batch["candidates"])
        capped = RequestMix({"capped": 1.0}).body(rng)
        assert capped["power_cap"] > 0
        scalar = RequestMix({"scalar": 1.0}).body(rng)
        assert "candidates" not in scalar and "power_cap" not in scalar

    def test_parse_round_trips_weights(self):
        mix = RequestMix.parse("scalar=0.5, batch=0.5")
        assert mix.kinds == ["scalar", "batch"]
        assert mix.weights == [0.5, 0.5]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown mix kind"):
            RequestMix({"chaos": 1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="positive weight"):
            RequestMix({"scalar": 0.0})


class TestSchedule:
    def test_stage_parsing(self):
        stages = _parse_stages("3x20,5x50")
        assert stages == [Stage(3.0, 20.0), Stage(5.0, 50.0)]

    def test_arrival_count_and_monotone_times(self):
        arrivals = schedule_arrivals(
            [Stage(2.0, 10.0), Stage(1.0, 5.0)], RequestMix(), seed=1
        )
        assert len(arrivals) == 25
        times = [at for at, _ in arrivals]
        assert times == sorted(times)
        assert times[0] == 0.0
        assert times[-1] < 3.0

    def test_same_seed_same_bodies(self):
        stages = [Stage(1.0, 8.0)]
        first = schedule_arrivals(stages, RequestMix(), seed=9)
        second = schedule_arrivals(stages, RequestMix(), seed=9)
        assert first == second


class TestLoadReport:
    def _report(self, latencies_ms):
        report = LoadReport(mode="open", duration_s=1.0)
        for ms in latencies_ms:
            report.record(ms / 1e3, 200, "hit")
        return report

    def test_percentiles(self):
        report = self._report(list(range(1, 101)))
        assert report.percentile(50) == pytest.approx(50, abs=1)
        assert report.percentile(99) == pytest.approx(99, abs=1)
        assert report.percentile(100) == 100

    def test_empty_report_is_quiet(self):
        report = LoadReport(mode="open", duration_s=0.0)
        assert report.percentile(99) == 0.0
        assert report.throughput_rps == 0.0
        assert report.to_json()["latency_ms"]["max"] == 0.0

    def test_histogram_buckets(self):
        report = self._report([0.5, 3.0, 3.5, 150.0])
        histogram = report.histogram()
        assert histogram["le_1ms"] == 1
        assert histogram["le_5ms"] == 2
        assert histogram["le_200ms"] == 1
        assert sum(histogram.values()) == 4

    def test_status_zero_counts_as_error(self):
        report = LoadReport(mode="closed", duration_s=1.0)
        report.record(0.01, 200, "hit")
        report.record(0.01, 0, None)
        assert report.errors == 1
        assert report.statuses == {"200": 1, "0": 1}

    def test_render_mentions_the_headline_numbers(self):
        report = self._report([2.0, 4.0])
        text = report.render()
        assert "2 requests" in text
        assert "p99" in text


class TestDrivers:
    def test_open_loop_fires_the_whole_schedule(self, stub_server):
        report = run_open_loop(
            _url(stub_server), [Stage(0.5, 20.0)], seed=4
        )
        assert report.requests == 10
        assert report.errors == 0
        assert report.statuses == {"200": 10}
        assert report.cache_states == {"hit": 10}
        assert len(stub_server.seen) == 10

    def test_open_loop_counts_unreachable_as_errors(self):
        # nothing listens here: every arrival is an error, not a crash
        report = run_open_loop(
            "http://127.0.0.1:9", [Stage(0.2, 10.0)], timeout=0.5
        )
        assert report.requests == 2
        assert report.errors == 2

    def test_closed_loop_cycles_the_body_pool(self, stub_server):
        bodies = [{"app": f"CG-{n}"} for n in (8, 16)]
        report = run_closed_loop(
            _url(stub_server), bodies, concurrency=2, duration_s=0.4
        )
        assert report.errors == 0
        assert report.requests > 4
        assert report.throughput_rps > 0
        apps = {body["app"] for body in stub_server.seen}
        assert apps == {"CG-8", "CG-16"}

    def test_cli_json_output(self, stub_server, capsys):
        code = main([
            "--url", _url(stub_server), "--mode", "open",
            "--stages", "0.3x10", "--seed", "2", "--json",
        ])
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["requests"] == 3
        assert out["errors"] == 0
        assert out["mode"] == "open"

    def test_cli_closed_mode_text_output(self, stub_server, capsys):
        code = main([
            "--url", _url(stub_server), "--mode", "closed",
            "--duration", "0.3", "--concurrency", "2", "--bodies", "4",
        ])
        assert code == 0
        assert "closed loop:" in capsys.readouterr().out
