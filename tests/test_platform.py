"""Unit tests for the platform (machine) model."""

import pytest

from repro.netsim.platform import MYRINET_LIKE, PlatformConfig


class TestValidation:
    def test_defaults_are_valid(self):
        assert MYRINET_LIKE.latency > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -1.0},
            {"bandwidth": 0.0},
            {"eager_threshold": -1},
            {"buses": -1},
            {"send_overhead": -0.1},
            {"cpus_per_node": 0},
            {"intra_node_speedup": 0.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlatformConfig(**kwargs)


class TestTransferTime:
    def test_inter_node_latency_plus_wire(self):
        p = PlatformConfig(latency=1e-5, bandwidth=1e8, cpus_per_node=1)
        assert p.transfer_time(1_000_000, 0, 1) == pytest.approx(1e-5 + 0.01)

    def test_intra_node_faster(self):
        p = PlatformConfig(cpus_per_node=4, intra_node_speedup=4.0)
        same_node = p.transfer_time(10_000, 0, 1)
        cross_node = p.transfer_time(10_000, 0, 4)
        assert same_node < cross_node

    def test_zero_bytes_costs_latency_only(self):
        p = PlatformConfig(latency=5e-6, cpus_per_node=1)
        assert p.transfer_time(0, 0, 1) == pytest.approx(5e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            MYRINET_LIKE.transfer_time(-1, 0, 1)


class TestNodeMapping:
    def test_block_mapping(self):
        p = PlatformConfig(cpus_per_node=4)
        assert [p.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


class TestCollectiveFactors:
    def test_default_factor_is_one(self):
        assert MYRINET_LIKE.collective_factor("allreduce") == 1.0

    def test_custom_factor(self):
        p = PlatformConfig(collective_factors={"alltoall": 2.5})
        assert p.collective_factor("alltoall") == 2.5
        assert p.collective_factor("bcast") == 1.0
