"""Unit tests for MPI envelope matching."""

import pytest

from repro.netsim.matching import Matcher
from repro.traces.records import ANY_SOURCE, ANY_TAG


class Recorder:
    """Collects matching callbacks for assertions."""

    def __init__(self):
        self.eager = []
        self.rendezvous = []
        self.sender_matched = 0

    def on_eager(self, msg):
        self.eager.append(msg)

    def on_rendezvous(self, send):
        self.rendezvous.append(send)

    def on_sender(self):
        self.sender_matched += 1


class TestEagerMatching:
    def test_recv_then_arrival(self):
        m = Matcher(2)
        rec = Recorder()
        m.post_recv(1, src=0, tag=5, on_eager=rec.on_eager,
                    on_rendezvous=rec.on_rendezvous)
        m.deliver_eager(1, src=0, tag=5, nbytes=100)
        assert len(rec.eager) == 1
        assert rec.eager[0].nbytes == 100

    def test_arrival_then_recv(self):
        m = Matcher(2)
        rec = Recorder()
        m.deliver_eager(1, src=0, tag=5, nbytes=100)
        m.post_recv(1, 0, 5, rec.on_eager, rec.on_rendezvous)
        assert len(rec.eager) == 1

    def test_tag_mismatch_queues(self):
        m = Matcher(2)
        rec = Recorder()
        m.post_recv(1, 0, 5, rec.on_eager, rec.on_rendezvous)
        m.deliver_eager(1, src=0, tag=6, nbytes=1)
        assert rec.eager == []
        assert m.outstanding()["unexpected_eager"] == 1
        assert m.outstanding()["posted_recvs"] == 1

    def test_any_source_any_tag_wildcards(self):
        m = Matcher(3)
        rec = Recorder()
        m.post_recv(2, ANY_SOURCE, ANY_TAG, rec.on_eager, rec.on_rendezvous)
        m.deliver_eager(2, src=1, tag=99, nbytes=7)
        assert len(rec.eager) == 1
        assert rec.eager[0].src == 1

    def test_fifo_among_queued_messages(self):
        m = Matcher(2)
        rec = Recorder()
        m.deliver_eager(1, src=0, tag=1, nbytes=111)
        m.deliver_eager(1, src=0, tag=1, nbytes=222)
        m.post_recv(1, 0, 1, rec.on_eager, rec.on_rendezvous)
        assert rec.eager[0].nbytes == 111

    def test_fifo_among_posted_recvs(self):
        m = Matcher(2)
        first, second = Recorder(), Recorder()
        m.post_recv(1, 0, 1, first.on_eager, first.on_rendezvous)
        m.post_recv(1, 0, 1, second.on_eager, second.on_rendezvous)
        m.deliver_eager(1, src=0, tag=1, nbytes=1)
        assert len(first.eager) == 1
        assert second.eager == []


class TestRendezvousMatching:
    def test_send_then_recv(self):
        m = Matcher(2)
        rec = Recorder()
        queued = m.post_ready_send(1, src=0, tag=3, nbytes=10**6,
                                   on_matched=rec.on_sender)
        assert queued is not None
        m.post_recv(1, 0, 3, rec.on_eager, rec.on_rendezvous)
        assert len(rec.rendezvous) == 1
        assert rec.rendezvous[0].nbytes == 10**6

    def test_recv_then_send_matches_immediately(self):
        m = Matcher(2)
        rec = Recorder()
        m.post_recv(1, 0, 3, rec.on_eager, rec.on_rendezvous)
        queued = m.post_ready_send(1, src=0, tag=3, nbytes=10**6,
                                   on_matched=rec.on_sender)
        assert queued is None
        assert len(rec.rendezvous) == 1

    def test_earliest_entry_wins_across_kinds(self):
        """A recv must take the oldest matching message, whether eager
        or rendezvous."""
        m = Matcher(2)
        rec = Recorder()
        m.post_ready_send(1, src=0, tag=1, nbytes=10**6,
                          on_matched=rec.on_sender)
        m.deliver_eager(1, src=0, tag=1, nbytes=5)
        m.post_recv(1, 0, 1, rec.on_eager, rec.on_rendezvous)
        assert len(rec.rendezvous) == 1  # the ready-send was posted first
        assert rec.eager == []


class TestValidation:
    def test_out_of_range_ranks_rejected(self):
        m = Matcher(2)
        with pytest.raises(ValueError):
            m.post_recv(5, 0, 0, lambda m: None, lambda s: None)
        with pytest.raises(ValueError):
            m.deliver_eager(0, src=9, tag=0, nbytes=1)

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            Matcher(0)

    def test_outstanding_counts(self):
        m = Matcher(2)
        m.post_recv(0, ANY_SOURCE, ANY_TAG, lambda x: None, lambda s: None)
        m.deliver_eager(1, src=0, tag=9, nbytes=1)
        m.post_ready_send(1, src=0, tag=8, nbytes=10**6, on_matched=lambda: None)
        out = m.outstanding()
        assert out == {
            "posted_recvs": 1,
            "unexpected_eager": 1,
            "ready_sends": 1,
        }
