"""Unit tests for the virtual-MPI authoring API and its patterns."""

import pytest

from repro.apps import vmpi
from repro.apps.vmpi import _grid_dims
from repro.netsim.simulator import MpiSimulator
from repro.traces.records import (
    CollectiveRecord,
    ComputeBurst,
    IrecvRecord,
    WaitallRecord,
)
from repro.traces.trace import Trace


class TestConstructors:
    def test_compute(self):
        rec = vmpi.compute(0.5, phase="x", beta=0.2)
        assert rec == ComputeBurst(0.5, phase="x", beta=0.2)

    def test_collectives_map_to_records(self):
        assert vmpi.allreduce(8) == CollectiveRecord("allreduce", 8)
        assert vmpi.bcast(16, root=3) == CollectiveRecord("bcast", 16, 3)
        assert vmpi.barrier() == CollectiveRecord("barrier")
        assert vmpi.alltoall(4) == CollectiveRecord("alltoall", 4)
        assert vmpi.allgather(4) == CollectiveRecord("allgather", 4)
        assert vmpi.gather(4, 1) == CollectiveRecord("gather", 4, 1)
        assert vmpi.scatter(4, 1) == CollectiveRecord("scatter", 4, 1)
        assert vmpi.reduce(4, 2) == CollectiveRecord("reduce", 4, 2)


class TestExchange:
    def test_structure_irecv_isend_waitall(self):
        records = list(vmpi.exchange(0, [1, 2], nbytes=64))
        kinds = [r.kind for r in records]
        assert kinds == ["irecv", "irecv", "isend", "isend", "waitall"]
        waitall = records[-1]
        assert isinstance(waitall, WaitallRecord)
        assert len(waitall.requests) == 4

    def test_self_partner_filtered(self):
        records = list(vmpi.exchange(1, [0, 1, 2], nbytes=8))
        partners = {r.src for r in records if isinstance(r, IrecvRecord)}
        assert partners == {0, 2}

    def test_empty_partner_list_yields_nothing(self):
        assert list(vmpi.exchange(0, [], nbytes=8)) == []

    def test_request_ids_unique(self):
        records = list(vmpi.exchange(0, [1, 2, 3], nbytes=8))
        reqs = [r.request for r in records if hasattr(r, "request")]
        assert len(reqs) == len(set(reqs))


class TestHalo1d:
    def test_interior_rank_two_partners(self):
        recs = list(vmpi.halo_exchange_1d(2, 5, nbytes=8))
        srcs = {r.src for r in recs if isinstance(r, IrecvRecord)}
        assert srcs == {1, 3}

    def test_edge_rank_one_partner_non_periodic(self):
        recs = list(vmpi.halo_exchange_1d(0, 5, nbytes=8))
        srcs = {r.src for r in recs if isinstance(r, IrecvRecord)}
        assert srcs == {1}

    def test_periodic_wraps(self):
        recs = list(vmpi.halo_exchange_1d(0, 5, nbytes=8, periodic=True))
        srcs = {r.src for r in recs if isinstance(r, IrecvRecord)}
        assert srcs == {1, 4}

    @pytest.mark.parametrize("nproc", [2, 3, 8])
    @pytest.mark.parametrize("periodic", [False, True])
    def test_world_runs_without_deadlock(self, nproc, periodic):
        programs = [
            list(vmpi.halo_exchange_1d(r, nproc, nbytes=8, periodic=periodic))
            for r in range(nproc)
        ]
        result = MpiSimulator().run(programs)
        assert result.execution_time >= 0.0


class TestHalo2d:
    def test_grid_dims_most_square(self):
        assert _grid_dims(16) == (4, 4)
        assert _grid_dims(12) == (3, 4)
        assert _grid_dims(7) == (1, 7)

    def test_corner_rank_two_partners(self):
        recs = list(vmpi.halo_exchange_2d(0, 16, nbytes=8))
        srcs = {r.src for r in recs if isinstance(r, IrecvRecord)}
        assert srcs == {1, 4}

    def test_interior_rank_four_partners(self):
        recs = list(vmpi.halo_exchange_2d(5, 16, nbytes=8))
        srcs = {r.src for r in recs if isinstance(r, IrecvRecord)}
        assert srcs == {1, 4, 6, 9}

    @pytest.mark.parametrize("nproc", [4, 6, 16])
    def test_world_runs_without_deadlock(self, nproc):
        programs = [
            list(vmpi.halo_exchange_2d(r, nproc, nbytes=8)) for r in range(nproc)
        ]
        result = MpiSimulator().run(programs)
        assert result.execution_time >= 0.0

    def test_periodic_2d_consistent(self):
        nproc = 9
        programs = [
            list(vmpi.halo_exchange_2d(r, nproc, nbytes=8, periodic=True))
            for r in range(nproc)
        ]
        MpiSimulator().run(programs)  # must not deadlock

    def test_symmetry_makes_valid_trace(self):
        nproc = 12
        trace = Trace.from_streams(
            [list(vmpi.halo_exchange_2d(r, nproc, nbytes=8)) for r in range(nproc)]
        )
        trace.validate()
