"""Columnar-native lint: record/columnar diagnostic identity.

The tentpole contract of the scale-aware diagnostics engine: linting a
:class:`ColumnarTrace` produces **diagnostic-identical** output to
linting the equivalent record-object trace — same codes, same messages,
same ranks/indices, same sort order — while never materialising a
record object.  Hypothesis drives the identity property over all nine
record kinds (wildcard receives and waitalls included) on two platforms
(eager-friendly and rendezvous-heavy); deliberate-deadlock fixtures pin
the TR008/TR009/TR010 replay paths at 4096 ranks.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagnostics.engine import LintConfig, lint_trace_subject
from repro.diagnostics.model import Severity
from repro.diagnostics.traceview import (
    ColumnarTraceView,
    RecordTraceView,
    is_columnar,
    make_view,
)
from repro.netsim.platform import MYRINET_LIKE
from repro.traces.columnar import (
    ColumnarRankView,
    ColumnarTrace,
    ColumnarTraceBuilder,
)
from repro.traces.records import ComputeBurst
from repro.traces.trace import Trace

from tests.test_columnar import NPROC, record_trace, stream_records

#: Everything a diagnostic carries that the identity contract covers.
def _key(diag):
    return (
        diag.code,
        diag.severity,
        diag.domain,
        diag.subject,
        diag.rank,
        diag.index,
        diag.message,
        diag.fix,
    )


#: Tiny eager threshold: most fuzzed sends go rendezvous, exercising
#: the blocking-send replay paths the default platform rarely hits.
RENDEZVOUS = dataclasses.replace(
    MYRINET_LIKE, name="rendezvous-heavy", eager_threshold=64
)

CONFIG = LintConfig()


def assert_identical(trace, platform=None, subject="fuzz"):
    ct = (
        trace
        if isinstance(trace, ColumnarTrace)
        else ColumnarTrace.from_trace(trace)
    )
    rt = ct.to_trace()
    record_diags = lint_trace_subject(rt, platform, subject, CONFIG)
    columnar_diags = lint_trace_subject(ct, platform, subject, CONFIG)
    assert [_key(d) for d in record_diags] == [
        _key(d) for d in columnar_diags
    ]
    return columnar_diags


class TestIdentityProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        streams=st.lists(stream_records(), min_size=NPROC, max_size=NPROC)
    )
    def test_all_nine_kinds_default_platform(self, streams):
        assert_identical(record_trace(streams), MYRINET_LIKE)

    @settings(max_examples=60, deadline=None)
    @given(
        streams=st.lists(stream_records(), min_size=NPROC, max_size=NPROC)
    )
    def test_all_nine_kinds_rendezvous_platform(self, streams):
        assert_identical(record_trace(streams), RENDEZVOUS)

    def test_view_dispatch(self):
        trace = Trace(2)
        ct = ColumnarTrace.from_trace(trace)
        assert not is_columnar(trace)
        assert is_columnar(ct)
        assert isinstance(make_view(trace), RecordTraceView)
        assert isinstance(make_view(ct), ColumnarTraceView)


BIG = MYRINET_LIKE.eager_threshold + 1  # rendezvous on the default net


def _ring_deadlock(nproc: int) -> ColumnarTrace:
    """Every rank rendezvous-sends to its successor before receiving:
    one giant circular wait."""
    builder = ColumnarTraceBuilder(nproc)
    for rank in range(nproc):
        builder.compute(rank, 1.0)
        builder.send(rank, dst=(rank + 1) % nproc, nbytes=BIG, tag=0)
        builder.recv(rank, src=(rank - 1) % nproc, tag=0)
    return builder.build(meta={"name": f"ring-deadlock-{nproc}"})


def _orphan_world(nproc: int) -> ColumnarTrace:
    """Rank nproc-1 receives from rank 0, which never sends."""
    builder = ColumnarTraceBuilder(nproc)
    for rank in range(nproc):
        builder.compute(rank, 1.0)
    builder.recv(nproc - 1, src=0, tag=0)
    return builder.build(meta={"name": f"orphan-{nproc}"})


def _collective_clash(nproc: int) -> ColumnarTrace:
    """The last rank calls allreduce where everyone else calls barrier
    (one mismatch: TR010 reports each rank disagreeing with the first
    arriver)."""
    builder = ColumnarTraceBuilder(nproc)
    for rank in range(nproc):
        builder.compute(rank, 1.0)
        odd = rank == nproc - 1
        builder.collective(
            rank, op="allreduce" if odd else "barrier",
            nbytes=8 if odd else 0,
        )
    return builder.build(meta={"name": f"clash-{nproc}"})


class TestDeadlockFixtures4k:
    """Deliberate-deadlock columnar fixtures at >= 4k ranks."""

    NRANKS = 4096

    def test_ring_deadlock_identity_and_tr008(self):
        diags = assert_identical(
            _ring_deadlock(self.NRANKS), subject="ring"
        )
        tr008 = [d for d in diags if d.code == "TR008"]
        assert len(tr008) == 1
        assert tr008[0].severity is Severity.ERROR
        # the cycle covers the whole ring
        assert f"r{self.NRANKS - 1}" in tr008[0].message

    def test_orphan_identity_and_tr009(self):
        diags = assert_identical(
            _orphan_world(self.NRANKS), subject="orphan"
        )
        tr009 = [d for d in diags if d.code == "TR009"]
        assert len(tr009) == 1
        assert tr009[0].rank == self.NRANKS - 1
        assert "recv from rank 0" in tr009[0].message

    def test_collective_clash_identity_and_tr010(self):
        diags = assert_identical(
            _collective_clash(self.NRANKS), subject="clash"
        )
        tr010 = [d for d in diags if d.code == "TR010"]
        assert len(tr010) == 1
        assert (
            f"rank 0 calls barrier but rank {self.NRANKS - 1} calls "
            "allreduce" in tr010[0].message
        )


class TestNoMaterialization:
    """The columnar lint path must never round-trip through records."""

    @pytest.fixture
    def poisoned(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError(
                "record materialisation on the columnar lint path"
            )

        monkeypatch.setattr(ColumnarTrace, "to_trace", boom)
        monkeypatch.setattr(ColumnarTrace, "record_at", boom)
        monkeypatch.setattr(ColumnarTrace, "records_of", boom)
        monkeypatch.setattr(ColumnarRankView, "__iter__", boom)

    def test_clean_world_lints_without_records(self, poisoned):
        from repro.apps import build_app

        ct = build_app("CG-32", iterations=2).columnar_trace()
        diags = lint_trace_subject(ct, MYRINET_LIKE, "CG-32", CONFIG)
        # DX000 would mean a rule crashed on the poisoned accessors —
        # i.e. it tried to materialise records
        assert not [d for d in diags if d.code == "DX000"]

    def test_deadlocked_world_lints_without_records(self, poisoned):
        ct = _ring_deadlock(64)
        diags = lint_trace_subject(ct, MYRINET_LIKE, "ring", CONFIG)
        assert not [d for d in diags if d.code == "DX000"]
        assert [d for d in diags if d.code == "TR008"]

    def test_mmap_store_lints_without_records(self, poisoned, tmp_path):
        """TR001–TR010 over an mmap-opened binary store: the columns
        stay out of core and no record ever materialises."""
        ct = _ring_deadlock(64)
        path = tmp_path / "ring.rpcs"
        # save through a fresh (unpoisoned-irrelevant) trace, reopen mapped
        ct.save(path)
        mapped = ColumnarTrace.open(path, mmap=True)
        assert mapped.is_mapped
        diags = lint_trace_subject(mapped, MYRINET_LIKE, "ring", CONFIG)
        assert not [d for d in diags if d.code == "DX000"]
        assert [d for d in diags if d.code == "TR008"]
        mapped.detach_mapping()

    def test_load_target_routes_store_by_magic(self, tmp_path):
        """`repro lint` classifies a store by magic bytes even when the
        extension lies."""
        from repro.diagnostics.cli import _load_target

        from repro.apps import build_app

        path = tmp_path / "innocent.bin"
        build_app("CG-32", iterations=2).columnar_trace().save(path)
        assert _load_target(str(path)) == ("trace", str(path))
        rpcs = tmp_path / "t.rpcs"
        rpcs.write_bytes(path.read_bytes())
        assert _load_target(str(rpcs)) == ("trace", str(rpcs))

    def test_service_lint_gate_is_record_free(self, poisoned):
        """The /v1/balance admission path must stay columnar-safe: the
        gate lints gear sets/models/caps, never a materialised trace."""
        from types import SimpleNamespace

        from repro.service.routes import parse_balance_request

        defaults = SimpleNamespace(beta=0.5, iterations=2, base_compute=1.0)
        spec, is_async = parse_balance_request(
            {"app": "CG-32", "power_cap": 100.0}, defaults
        )
        assert spec["app"] == "CG-32"
        assert spec["power_cap"] == 100.0  # gates admission AND selects
        assert not is_async


class TestSuppressionParity:
    def test_lint_ignore_meta_respected_on_columnar(self):
        trace = Trace(2, meta={"name": "supp", "lint-ignore": ["TR001"]})
        trace[0].append(ComputeBurst(duration=1.0))
        trace[1].append(ComputeBurst(duration=1.0))
        ct = ColumnarTrace.from_trace(trace)
        diags = lint_trace_subject(ct, MYRINET_LIKE, "supp", CONFIG)
        assert not [d for d in diags if d.code == "TR001"]
        assert_identical(ct, MYRINET_LIKE, "supp")
