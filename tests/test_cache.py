"""Unit tests for the persistent result cache and the parallel campaign.

Covers the invalidation contract (same config hits, any physical
change misses), corruption tolerance, and the determinism of
``reproduce_all`` across job counts.
"""

import copy
import dataclasses
import json

import pytest

from repro.core.gears import uniform_gear_set
from repro.experiments.cache import ResultCache, describe_gear_set
from repro.experiments.campaign import reproduce_all
from repro.experiments.runner import Runner, RunnerConfig

FAST = dict(iterations=2)


def make_runner(cache_dir, **overrides):
    return Runner(RunnerConfig(**{**FAST, **overrides}, cache_dir=str(cache_dir)))


class TestCacheHits:
    def test_same_config_hits_with_identical_rows(self, tmp_path):
        r1 = make_runner(tmp_path).balance("CG-16", uniform_gear_set(6))
        runner = make_runner(tmp_path)  # fresh process-equivalent
        r2 = runner.balance("CG-16", uniform_gear_set(6))
        assert runner.cache.hits == 1 and runner.cache.misses == 0
        assert r1 is not r2
        assert r1.row() == r2.row()

    def test_trace_shared_across_runners(self, tmp_path):
        make_runner(tmp_path).trace("IS-16")
        runner = make_runner(tmp_path)
        runner.trace("IS-16")
        assert runner.cache.stats() == {
            "hits": 1, "misses": 0, "corrupt": 0, "stores": 0,
        }

    def test_changed_beta_misses(self, tmp_path):
        make_runner(tmp_path).balance("CG-16", uniform_gear_set(6), beta=0.5)
        runner = make_runner(tmp_path)
        runner.balance("CG-16", uniform_gear_set(6), beta=0.9)
        # the trace (β-independent) hits; the report misses
        assert runner.cache.hits == 1
        assert runner.cache.misses == 1

    def test_changed_gear_set_misses(self, tmp_path):
        make_runner(tmp_path).balance("CG-16", uniform_gear_set(6))
        runner = make_runner(tmp_path)
        runner.balance("CG-16", uniform_gear_set(8))
        assert runner.cache.hits == 1  # trace
        assert runner.cache.misses == 1  # report

    def test_changed_platform_misses_everything(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.balance("CG-16", uniform_gear_set(6))
        slow = dataclasses.replace(runner.config.platform, latency=5e-4)
        other = make_runner(tmp_path, platform=slow)
        other.balance("CG-16", uniform_gear_set(6))
        assert other.cache.hits == 0
        assert other.cache.misses == 2  # trace and report

    def test_changed_iterations_misses_everything(self, tmp_path):
        make_runner(tmp_path).balance("CG-16", uniform_gear_set(6))
        other = make_runner(tmp_path, iterations=3)
        other.balance("CG-16", uniform_gear_set(6))
        assert other.cache.hits == 0
        assert other.cache.misses == 2

    def test_gear_set_description_pins_frequencies(self):
        d6 = describe_gear_set(uniform_gear_set(6))
        d8 = describe_gear_set(uniform_gear_set(8))
        assert d6 != d8
        assert d6 == describe_gear_set(uniform_gear_set(6))


class TestCorruption:
    def test_corrupted_blob_is_ignored_and_rewritten(self, tmp_path):
        baseline = make_runner(tmp_path).balance("CG-16", uniform_gear_set(6))
        blobs = list(tmp_path.glob("*.pkl"))
        assert blobs
        for blob in blobs:
            blob.write_bytes(b"\x00garbage, not a pickle")

        runner = make_runner(tmp_path)
        recomputed = runner.balance("CG-16", uniform_gear_set(6))
        assert runner.cache.hits == 0
        assert runner.cache.misses == 2
        # both misses were corruption, not cold cache
        assert runner.cache.corrupt == 2
        assert recomputed.row() == baseline.row()

        # the recompute rewrote good blobs: a third runner hits again
        third = make_runner(tmp_path)
        assert third.balance("CG-16", uniform_gear_set(6)).row() == baseline.row()
        assert third.cache.hits == 1
        assert third.cache.corrupt == 0

    def test_cold_miss_is_not_counted_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("report", {"k": 1}) is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "corrupt": 0, "stores": 0,
        }

    def test_flipped_bit_in_body_fails_digest_check(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("report", {"k": 1}, {"v": 2})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one bit inside the pickle body
        path.write_bytes(bytes(raw))
        assert cache.get("report", {"k": 1}) is None
        assert cache.corrupt == 1

    def test_truncated_blob_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("report", {"k": 1}, {"v": 2})
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("report", {"k": 1}) is None
        assert cache.corrupt == 1

    def test_missing_dir_is_created_lazily(self, tmp_path):
        cache = ResultCache(tmp_path / "does" / "not" / "exist")
        assert cache.get("report", {"k": 1}) is None
        cache.put("report", {"k": 1}, {"v": 2})
        assert cache.get("report", {"k": 1}) == {"v": 2}


class TestDiskMaintenance:
    def test_disk_stats_counts_by_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("trace", {"a": 1}, [1, 2, 3])
        cache.put("report", {"a": 1}, {"x": 1})
        cache.put("report", {"a": 2}, {"x": 2})
        stats = cache.disk_stats()
        assert stats["entries"] == 3
        assert stats["kinds"] == {"report": 2, "trace": 1}
        assert stats["total_bytes"] > 0
        assert stats["oldest_mtime"] is not None

    def test_gc_drops_only_old_blobs(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        old = cache.put("report", {"a": 1}, {"x": 1})
        new = cache.put("report", {"a": 2}, {"x": 2})
        stale = time.time() - 10 * 86400
        os.utime(old, (stale, stale))
        out = cache.gc(max_age_days=5)
        assert out["removed"] == 1 and out["freed_bytes"] > 0
        assert not old.exists() and new.exists()

    def test_gc_sweeps_stray_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("report", {"a": 1}, {"x": 1})
        (tmp_path / "leftover.tmp").write_bytes(b"half-written")
        out = cache.gc(max_age_days=365)
        assert out["removed"] == 1
        assert cache.entry_count() == 1

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("trace", {"a": 1}, [1])
        cache.put("report", {"a": 1}, {"x": 1})
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.disk_stats()["entries"] == 0


class TestConcurrentMaintenance:
    """gc/clear/disk_stats vs files vanishing mid-walk.

    In a replica fleet several processes share (or maintain) a cache
    directory; any path yielded by the directory walk may be unlinked
    by a sibling before this process stats or removes it.  The vanish
    is simulated deterministically by feeding the walk a stale listing.
    """

    def _stale_walk(self, cache, monkeypatch, delete_index=0):
        """Freeze the blob listing, then delete one listed file."""
        paths = list(cache._blobs())
        paths[delete_index].unlink()
        monkeypatch.setattr(cache, "_blobs", lambda: iter(paths))
        return paths[delete_index]

    def test_gc_tolerates_blob_vanishing_mid_walk(self, tmp_path, monkeypatch):
        import os
        import time

        cache = ResultCache(tmp_path)
        first = cache.put("report", {"a": 1}, {"x": 1})
        second = cache.put("report", {"a": 2}, {"x": 2})
        stale = time.time() - 10 * 86400
        os.utime(first, (stale, stale))
        os.utime(second, (stale, stale))
        gone = self._stale_walk(cache, monkeypatch)
        out = cache.gc(max_age_days=5)
        # the raced file is not counted; the surviving one is collected
        assert out["removed"] == 1
        assert not gone.exists()
        assert cache.entry_count() == 0

    def test_clear_tolerates_blob_vanishing_mid_walk(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        cache.put("report", {"a": 1}, {"x": 1})
        cache.put("report", {"a": 2}, {"x": 2})
        self._stale_walk(cache, monkeypatch, delete_index=1)
        assert cache.clear() == 1
        assert cache.entry_count() == 0

    def test_disk_stats_tolerates_blob_vanishing_mid_walk(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        cache.put("report", {"a": 1}, {"x": 1})
        cache.put("report", {"a": 2}, {"x": 2})
        self._stale_walk(cache, monkeypatch)
        stats = cache.disk_stats()
        assert stats["entries"] == 1
        assert stats["kinds"] == {"report": 1}

    def test_maintenance_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.gc(max_age_days=0) == {"removed": 0, "freed_bytes": 0}
        assert cache.clear() == 0
        assert cache.entry_count() == 0

    def test_concurrent_clears_never_raise(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        cache = ResultCache(tmp_path)
        for i in range(30):
            cache.put("report", {"a": i}, {"x": i})
        siblings = [ResultCache(tmp_path) for _ in range(4)]
        with ThreadPoolExecutor(4) as pool:
            counts = list(pool.map(lambda c: c.clear(), siblings))
        # every file removed exactly once, whoever got there first
        assert sum(counts) == 30
        assert cache.entry_count() == 0


class TestRawBlobAccess:
    """The framed-blob API behind the peer-cache wire protocol."""

    def test_put_get_round_trip(self, tmp_path):
        import pickle

        from repro.experiments.cache import cache_key, frame_blob, unframe_blob

        cache = ResultCache(tmp_path)
        key = cache_key("report", {"q": 1})
        blob = frame_blob(pickle.dumps({"answer": 42}))
        cache.put_raw(key, blob)
        raw = cache.get_raw(key)
        assert raw == blob
        assert pickle.loads(unframe_blob(raw)) == {"answer": 42}
        # the raw store is the same store the value API reads
        assert cache.get("report", {"q": 1}) == {"answer": 42}

    def test_put_raw_rejects_torn_blob(self, tmp_path):
        import pickle

        from repro.experiments.cache import cache_key, frame_blob

        cache = ResultCache(tmp_path)
        key = cache_key("report", {"q": 2})
        blob = frame_blob(pickle.dumps({"answer": 42}))
        with pytest.raises(ValueError, match="frame verification"):
            cache.put_raw(key, blob[:-3])
        assert cache.get_raw(key) is None
        assert cache.entry_count() == 0

    def test_get_raw_refuses_corrupt_disk_blob(self, tmp_path):
        import pickle

        from repro.experiments.cache import cache_key, frame_blob

        cache = ResultCache(tmp_path)
        key = cache_key("report", {"q": 3})
        cache.put_raw(key, frame_blob(pickle.dumps({"answer": 42})))
        path = next(iter(cache._blobs()))
        path.write_bytes(path.read_bytes()[:-5])  # bit-rot the body
        assert cache.get_raw(key) is None

    def test_get_raw_missing_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_raw("report-" + "0" * 64) is None


class TestCacheCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_stats_and_clear(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("report", {"a": 1}, {"x": 1})
        assert self._run("cache", "--cache-dir", str(tmp_path), "stats") == 0
        out = capsys.readouterr().out
        assert "entries:     1" in out and "report" in out

        assert self._run(
            "cache", "--cache-dir", str(tmp_path), "stats", "--json"
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1 and stats["kinds"] == {"report": 1}

        assert self._run("cache", "--cache-dir", str(tmp_path), "clear") == 0
        assert "removed 1 blob(s)" in capsys.readouterr().out
        assert cache.entry_count() == 0

    def test_gc_respects_max_age(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("report", {"a": 1}, {"x": 1})
        assert self._run(
            "cache", "--cache-dir", str(tmp_path), "gc", "--max-age", "30"
        ) == 0
        assert "removed 0 blob(s)" in capsys.readouterr().out
        assert self._run(
            "cache", "--cache-dir", str(tmp_path), "gc", "--max-age", "0"
        ) == 0
        assert "removed 1 blob(s)" in capsys.readouterr().out


class TestCampaignJobs:
    EXPERIMENTS = ("table_gears", "fig3", "table3")
    CONFIG = RunnerConfig(iterations=2, apps=("BT-MZ-32", "CG-32"))

    @staticmethod
    def _normalized(manifest):
        m = copy.deepcopy(manifest)
        m.pop("wall_seconds")
        m.pop("jobs")
        # engine counters are deterministic; their wall-clock-derived
        # fields (seconds, rates) are not
        for timing in ("des_seconds", "compiled_seconds",
                       "des_evals_per_second", "compiled_evals_per_second"):
            m["engines"].pop(timing)
        for entry in m["experiments"].values():
            entry.pop("seconds")
            entry["engines"].pop("des_seconds")
            entry["engines"].pop("compiled_seconds")
        return m

    def test_jobs4_manifest_matches_jobs1(self, tmp_path):
        quiet = lambda *args: None  # noqa: E731
        serial = reproduce_all(
            tmp_path / "serial", self.CONFIG,
            experiments=self.EXPERIMENTS, echo=quiet, jobs=1,
        )
        parallel = reproduce_all(
            tmp_path / "parallel", self.CONFIG,
            experiments=self.EXPERIMENTS, echo=quiet, jobs=4,
        )
        assert parallel["jobs"] == 4
        assert self._normalized(serial) == self._normalized(parallel)
        # artifacts are byte-identical, not just the manifest
        for name in ["REPORT.md", *(f"{e}.csv" for e in self.EXPERIMENTS),
                     *(f"{e}.txt" for e in self.EXPERIMENTS)]:
            assert (tmp_path / "serial" / name).read_bytes() == (
                tmp_path / "parallel" / name
            ).read_bytes(), name

    def test_failing_experiment_is_isolated(self, tmp_path):
        bad = RunnerConfig(iterations=2, apps=("NO-SUCH-APP-32",))
        manifest = reproduce_all(
            tmp_path, bad, experiments=("table_gears", "fig3"),
            echo=lambda *args: None,
        )
        assert manifest["errors"] == 1
        assert "error" in manifest["experiments"]["fig3"]
        assert "traceback" in manifest["experiments"]["fig3"]
        # the app-independent experiment still completed and wrote files
        assert "error" not in manifest["experiments"]["table_gears"]
        assert (tmp_path / "table_gears.csv").exists()
        assert "FAILED" in (tmp_path / "REPORT.md").read_text()
        written = json.loads((tmp_path / "manifest.json").read_text())
        assert written["errors"] == 1

    def test_parallel_failure_is_isolated_too(self, tmp_path):
        bad = RunnerConfig(iterations=2, apps=("NO-SUCH-APP-32",))
        manifest = reproduce_all(
            tmp_path, bad, experiments=("table_gears", "fig3"),
            echo=lambda *args: None, jobs=2,
        )
        assert manifest["errors"] == 1
        assert "error" in manifest["experiments"]["fig3"]
        assert "error" not in manifest["experiments"]["table_gears"]

    def test_cache_dir_that_is_a_file_rejected_upfront(self, tmp_path):
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        with pytest.raises(ValueError, match="not a directory"):
            reproduce_all(
                tmp_path / "out", self.CONFIG, experiments=("table_gears",),
                echo=lambda *args: None, cache_dir=blocker,
            )

    def test_campaign_cache_stats_reported(self, tmp_path):
        quiet = lambda *args: None  # noqa: E731
        cold = reproduce_all(
            tmp_path / "cold", self.CONFIG, experiments=("fig3",),
            echo=quiet, cache_dir=tmp_path / "cache",
        )
        warm = reproduce_all(
            tmp_path / "warm", self.CONFIG, experiments=("fig3",),
            echo=quiet, cache_dir=tmp_path / "cache",
        )
        assert cold["cache"]["enabled"] and warm["cache"]["enabled"]
        assert cold["cache"]["misses"] > 0
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hits"] > 0
        rows = (tmp_path / "cold" / "fig3.csv").read_bytes()
        assert rows == (tmp_path / "warm" / "fig3.csv").read_bytes()
