"""Unit tests for JSON-lines trace persistence."""

import io

import pytest

from repro.traces.jsonio import dumps_trace, loads_trace, read_trace, write_trace
from repro.traces.records import CollectiveRecord, ComputeBurst, SendRecord
from repro.traces.trace import Trace


def sample_trace() -> Trace:
    t = Trace(2, meta={"name": "sample", "tags": ["a", "b"]})
    t[0].append(ComputeBurst(1.5, phase="p", beta=0.3))
    t[0].append(SendRecord(1, 4096, tag=3))
    t[1].append(CollectiveRecord("allreduce", 64))
    return t


class TestRoundTrip:
    def test_string_round_trip_preserves_everything(self):
        t = sample_trace()
        t2 = loads_trace(dumps_trace(t))
        assert t2.nproc == t.nproc
        assert t2.meta == t.meta
        for s1, s2 in zip(t, t2):
            assert s1.records == s2.records

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(sample_trace(), path)
        t2 = read_trace(path)
        assert t2.meta["name"] == "sample"
        assert t2[0].records[0] == ComputeBurst(1.5, phase="p", beta=0.3)

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        write_trace(sample_trace(), path)
        t2 = read_trace(str(path))
        assert t2.total_records() == 3
        # compressed file should actually be gzip
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"

    def test_app_trace_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "app.jsonl"
        write_trace(small_trace, path)
        t2 = read_trace(path)
        assert t2.total_records() == small_trace.total_records()
        assert [s.compute_time() for s in t2] == pytest.approx(
            [s.compute_time() for s in small_trace]
        )


class TestErrors:
    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            loads_trace("")

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-trace"):
            loads_trace('{"format": "other", "version": 1, "nproc": 1}\n')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            loads_trace('{"format": "repro-trace", "version": 99, "nproc": 1}\n')

    def test_bad_event_line_reports_lineno(self):
        text = (
            '{"format": "repro-trace", "version": 1, "nproc": 1, "meta": {}}\n'
            '{"rank": 0, "kind": "compute", "duration": -5}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            loads_trace(text)

    def test_out_of_range_rank_rejected(self):
        text = (
            '{"format": "repro-trace", "version": 1, "nproc": 1, "meta": {}}\n'
            '{"rank": 7, "kind": "compute", "duration": 1.0}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            loads_trace(text)

    def test_blank_lines_tolerated(self):
        text = dumps_trace(sample_trace()).replace("\n", "\n\n")
        t = loads_trace(text)
        assert t.total_records() == 3

    def test_writes_to_open_stream_without_closing(self):
        buf = io.StringIO()
        write_trace(sample_trace(), buf)
        assert not buf.closed
        buf.seek(0)
        assert read_trace(buf).nproc == 2
