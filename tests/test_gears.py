"""Unit tests for gear sets — including exact matches to Tables 1 & 2."""

import math

import pytest

from repro.core.gears import (
    ContinuousGearSet,
    DiscreteGearSet,
    Gear,
    LinearVoltageLaw,
    NOMINAL_FMAX,
    NOMINAL_FMIN,
    exponential_gear_set,
    limited_continuous_set,
    overclocked,
    uniform_gear_set,
    unlimited_continuous_set,
)


class TestVoltageLaw:
    def test_reference_points(self):
        law = LinearVoltageLaw()
        assert law.voltage(0.8) == pytest.approx(1.0)
        assert law.voltage(2.3) == pytest.approx(1.5)

    def test_avg_overclock_gear_matches_paper(self):
        # the paper adds (2.6 GHz, 1.6 V) — on the same line
        assert LinearVoltageLaw().voltage(2.6) == pytest.approx(1.6)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            LinearVoltageLaw().voltage(0.0)


class TestPaperTables:
    def test_table1_uniform_six_gears(self):
        gear_set = uniform_gear_set(6)
        freqs = [round(f, 2) for f in gear_set.frequencies]
        volts = [round(g.voltage, 2) for g in gear_set]
        assert freqs == [0.8, 1.1, 1.4, 1.7, 2.0, 2.3]
        assert volts == [1.0, 1.1, 1.2, 1.3, 1.4, 1.5]

    def test_table2_exponential_six_gears(self):
        gear_set = exponential_gear_set(6)
        freqs = [round(f, 2) for f in gear_set.frequencies]
        volts = [round(g.voltage, 2) for g in gear_set]
        assert freqs == [0.8, 1.57, 1.96, 2.15, 2.25, 2.3]
        assert volts == [1.0, 1.26, 1.39, 1.45, 1.48, 1.5]

    def test_exponential_gaps_halve(self):
        freqs = exponential_gear_set(7).frequencies
        gaps = [b - a for a, b in zip(freqs, freqs[1:])]
        for wide, narrow in zip(gaps, gaps[1:]):
            assert wide / narrow == pytest.approx(2.0)


class TestDiscreteSelection:
    def test_round_up_to_next_gear(self):
        gear_set = uniform_gear_set(6)
        sel = gear_set.select(1.2)
        assert sel.gear.frequency == pytest.approx(1.4)
        assert sel.attained

    def test_exact_frequency_selects_itself(self):
        sel = uniform_gear_set(6).select(1.7)
        assert sel.gear.frequency == pytest.approx(1.7)

    def test_below_minimum_clamps_to_lowest(self):
        sel = uniform_gear_set(6).select(0.1)
        assert sel.gear.frequency == pytest.approx(0.8)
        assert sel.attained

    def test_zero_request_gets_slowest(self):
        assert uniform_gear_set(6).select(0.0).gear.frequency == pytest.approx(0.8)

    def test_above_maximum_clamps_and_flags(self):
        sel = uniform_gear_set(6).select(3.0)
        assert sel.gear.frequency == pytest.approx(2.3)
        assert not sel.attained

    def test_inf_request_clamps_and_flags(self):
        sel = uniform_gear_set(6).select(math.inf)
        assert sel.gear.frequency == pytest.approx(2.3)
        assert not sel.attained

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError):
            uniform_gear_set(6).select(-1.0)

    def test_sizes_2_to_15_span_the_range(self):
        for n in range(2, 16):
            gear_set = uniform_gear_set(n)
            assert len(gear_set) == n
            assert gear_set.fmin == pytest.approx(NOMINAL_FMIN)
            assert gear_set.fmax == pytest.approx(NOMINAL_FMAX)

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DiscreteGearSet([Gear(1.0, 1.0), Gear(1.0, 1.1)])

    def test_non_monotone_voltage_rejected(self):
        with pytest.raises(ValueError, match="increase"):
            DiscreteGearSet([Gear(1.0, 1.2), Gear(2.0, 1.1)])

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            DiscreteGearSet([])

    def test_with_extra_gear(self):
        base = uniform_gear_set(6)
        extended = base.with_extra_gear(Gear(2.6, 1.6))
        assert len(extended) == 7
        assert extended.fmax == pytest.approx(2.6)
        # original set untouched
        assert len(base) == 6

    def test_extra_gear_must_be_faster(self):
        with pytest.raises(ValueError, match="faster"):
            uniform_gear_set(6).with_extra_gear(Gear(2.0, 1.55))


class TestContinuousSets:
    def test_unlimited_reaches_below_hardware_floor(self):
        sel = unlimited_continuous_set().select(0.3)
        assert sel.gear.frequency == pytest.approx(0.3)
        assert sel.attained

    def test_limited_clamps_at_floor(self):
        sel = limited_continuous_set().select(0.3)
        assert sel.gear.frequency == pytest.approx(0.8)
        assert sel.attained

    def test_continuous_selection_is_exact(self):
        sel = limited_continuous_set().select(1.9173)
        assert sel.gear.frequency == pytest.approx(1.9173)

    def test_voltage_follows_law(self):
        sel = limited_continuous_set().select(1.55)
        assert sel.gear.voltage == pytest.approx(1.0 + (1.55 - 0.8) / 3.0)

    def test_above_ceiling_flags(self):
        sel = limited_continuous_set().select(2.5)
        assert sel.gear.frequency == pytest.approx(2.3)
        assert not sel.attained

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            ContinuousGearSet(2.0, 1.0)


class TestOverclocked:
    def test_ceiling_raised_by_percentage(self):
        oc = overclocked(limited_continuous_set(), 10.0)
        assert oc.fmax == pytest.approx(2.3 * 1.1)
        assert oc.fmin == pytest.approx(0.8)

    def test_voltage_extrapolates_linearly(self):
        oc = overclocked(limited_continuous_set(), 20.0)
        sel = oc.select(2.76)
        assert sel.gear.voltage == pytest.approx(1.0 + (2.76 - 0.8) / 3.0)

    def test_discrete_set_rejected(self):
        with pytest.raises(TypeError):
            overclocked(uniform_gear_set(6), 10.0)

    def test_negative_pct_rejected(self):
        with pytest.raises(ValueError):
            overclocked(limited_continuous_set(), -5.0)


class TestGear:
    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            Gear(0.0, 1.0)
        with pytest.raises(ValueError):
            Gear(1.0, 0.0)

    def test_str_format(self):
        assert str(Gear(2.3, 1.5)) == "2.3GHz@1.5V"
