"""Unit tests for the FIFO capacity resource."""

import pytest

from repro.simx.engine import Engine
from repro.simx.errors import SimulationError
from repro.simx.process import Hold, Process, WaitSignal
from repro.simx.resources import Resource


def worker(engine, resource, duration, log, label):
    grant = resource.acquire()
    yield WaitSignal(grant)
    log.append((label, "start", engine.now))
    yield Hold(duration)
    resource.release()
    log.append((label, "end", engine.now))


class TestResource:
    def test_capacity_one_serialises(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        log = []
        for label in "ab":
            Process(eng, worker(eng, res, 2.0, log, label))
        eng.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 2.0),
            ("b", "start", 2.0),
            ("b", "end", 4.0),
        ]

    def test_capacity_two_overlaps(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        log = []
        for label in "abc":
            Process(eng, worker(eng, res, 2.0, log, label))
        eng.run()
        starts = {label: t for label, kind, t in log if kind == "start"}
        assert starts == {"a": 0.0, "b": 0.0, "c": 2.0}

    def test_fifo_order(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        log = []
        for label in "abcd":
            Process(eng, worker(eng, res, 1.0, log, label))
        eng.run()
        start_order = [label for label, kind, _ in log if kind == "start"]
        assert start_order == ["a", "b", "c", "d"]

    def test_immediate_grant_when_free(self):
        eng = Engine()
        res = Resource(eng, capacity=3)
        grant = res.acquire()
        assert grant.triggered
        assert res.in_use == 1
        assert res.available == 2

    def test_release_hands_to_waiter(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        first = res.acquire()
        second = res.acquire()
        assert first.triggered and not second.triggered
        assert res.queued == 1
        res.release()
        eng.run()
        assert second.triggered
        assert res.in_use == 1  # ownership passed, not freed

    def test_over_release_rejected(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        res.acquire()
        res.release()
        with pytest.raises(SimulationError, match="more times"):
            res.release()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)

    def test_counters_consistent_through_churn(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        log = []
        for i in range(7):
            Process(eng, worker(eng, res, 0.5 * (i + 1), log, str(i)))
        eng.run()
        assert res.in_use == 0
        assert res.queued == 0
        assert len([1 for _, kind, _ in log if kind == "end"]) == 7
