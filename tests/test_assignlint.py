"""Assignment (AS) and power-cap (PC) feasibility rules.

Covers the static checks over frequency-assignment vectors and sweep
grids, the PC screening a cap against the power model's floor/ceiling,
the ``/v1/balance`` admission wiring (scalar and ``candidates`` batch
bodies), and the ``repro lint`` target classification.
"""

import json
from types import SimpleNamespace

import pytest

from repro.core.gears import (
    uniform_gear_set,
    unlimited_continuous_set,
)
from repro.core.power import CpuPowerModel, CpuState
from repro.diagnostics.engine import (
    LintConfig,
    lint_assignment,
    lint_power_cap,
)
from repro.diagnostics.model import Severity
from repro.service.errors import LintRejected, ValidationError
from repro.service.routes import parse_balance_request

GS = uniform_gear_set(6)  # 0.8 .. 2.3 GHz
DEFAULTS = SimpleNamespace(beta=0.5, iterations=2, base_compute=1.0)


def codes(diags):
    return [d.code for d in diags]


def _pairs(*freqs):
    """Well-formed (f, V) pairs through the set's own selection."""
    return [
        (f, GS.select(f).gear.voltage) for f in freqs
    ]


class TestAssignmentRules:
    def test_clean_assignment_is_clean(self):
        diags = lint_assignment(
            GS, pairs=_pairs(0.8, 1.4, 2.3), nproc=3,
            compute_times=[1.0, 2.0, 3.0], subject="ok",
        )
        assert diags == []

    def test_as001_unknown_gear(self):
        diags = lint_assignment(GS, pairs=[(1.55, 1.25)], subject="x")
        assert codes(diags) == ["AS001"]
        assert "1.55 GHz is not a gear" in diags[0].message
        assert diags[0].severity is Severity.ERROR

    def test_as001_continuous_range(self):
        cont = unlimited_continuous_set()
        # inside the band: fine; above fmax: flagged
        assert lint_assignment(
            cont, pairs=[(1.234, cont.select(1.234).gear.voltage)]
        ) == []
        diags = lint_assignment(cont, pairs=[(9.0, 1.5)])
        assert codes(diags) == ["AS001"]

    def test_as001_groups_identical_frequencies(self):
        diags = lint_assignment(
            GS, pairs=[(9.0, 1.5)] * 5 + _pairs(2.3), subject="x"
        )
        assert codes(diags) == ["AS001"]
        assert "5 rank(s), first at rank 0" in diags[0].message

    def test_as002_length_mismatch(self):
        diags = lint_assignment(GS, pairs=_pairs(2.3), nproc=8)
        assert codes(diags) == ["AS002"]
        assert "1 gear(s)" in diags[0].message
        assert "8 rank(s)" in diags[0].message

    def test_as003_voltage_off_law(self):
        diags = lint_assignment(GS, pairs=[(1.7, 0.9)], subject="x")
        assert codes(diags) == ["AS003"]
        assert "deviates from the set's 1.3 V" in diags[0].message

    def test_as003_skips_as001_ranks(self):
        # an unknown frequency has no expected voltage to compare
        diags = lint_assignment(GS, pairs=[(9.9, 0.1)])
        assert codes(diags) == ["AS001"]

    def test_as004_non_monotone(self):
        # rank 1 has the most compute but the slowest gear
        diags = lint_assignment(
            GS, pairs=_pairs(2.3, 0.8), compute_times=[1.0, 5.0]
        )
        assert codes(diags) == ["AS004"]
        assert diags[0].severity is Severity.WARNING
        assert "rank 1 at 0.8 GHz" in diags[0].message

    def test_as004_equal_times_allow_any_order(self):
        diags = lint_assignment(
            GS, pairs=_pairs(2.3, 0.8), compute_times=[1.0, 1.0]
        )
        assert diags == []

    def test_as005_beta_override(self):
        assert lint_assignment(GS, beta=0.5) == []
        diags = lint_assignment(GS, beta=1.5)
        assert codes(diags) == ["AS005"]
        diags = lint_assignment(GS, beta=[0.2, float("nan"), -0.1])
        assert codes(diags) == ["AS005", "AS005"]
        assert [d.rank for d in diags] == [1, 2]

    def test_as006_duplicate_grid(self):
        grid = [
            {"gears": "uniform:6", "algorithm": "max"},
            {"gears": "uniform:6", "algorithm": "avg"},
            {"gears": "uniform:6", "algorithm": "max"},
        ]
        diags = lint_assignment(GS, grid=grid, subject="grid")
        assert codes(diags) == ["AS006"]
        assert diags[0].index == 2
        assert "duplicates candidate #0" in diags[0].message

    def test_from_assignment_dict(self):
        payload = {
            "algorithm": "max",
            "target_time": 1.0,
            "gears": [[2.3, 1.5], [9.9, 1.0]],
            "overclocked": [False, False],
            "attained": [True, True],
        }
        diags = lint_assignment(GS, assignment=payload, subject="a.json")
        assert codes(diags) == ["AS001"]

    def test_selection_covers_as_prefix(self):
        diags = lint_assignment(
            GS,
            pairs=[(9.9, 1.5)],
            nproc=3,
            config=LintConfig(ignore=("AS001",)),
        )
        assert codes(diags) == ["AS002"]


class TestPowerCapRules:
    PM = CpuPowerModel()
    N = 4

    @property
    def floor(self):
        return self.N * self.PM.static_power(GS.select(0.0).gear)

    @property
    def fmin_power(self):
        return self.N * self.PM.power(GS.select(0.0).gear, CpuState.COMPUTE)

    @property
    def peak(self):
        return self.N * self.PM.power(GS.top_gear(), CpuState.COMPUTE)

    def test_pc001_below_idle_floor(self):
        diags = lint_power_cap(self.floor * 0.5, self.N, GS)
        assert codes(diags) == ["PC001"]
        assert diags[0].severity is Severity.ERROR

    def test_pc002_unreachable_at_fmin(self):
        cap = (self.floor + self.fmin_power) / 2
        diags = lint_power_cap(cap, self.N, GS)
        assert codes(diags) == ["PC002"]
        assert "at the slowest gear" in diags[0].message

    def test_pc001_pc002_mutually_exclusive(self):
        for cap in (0.01, self.floor * 0.99, self.floor * 1.01,
                    self.fmin_power * 0.99):
            errors = codes(lint_power_cap(cap, self.N, GS))
            assert len([c for c in errors if c.startswith("PC00")]) == 1

    def test_pc003_budget_underflow(self):
        # feasible overall, but one rank at fmax starves the rest
        per_rank_fmin = self.fmin_power / self.N
        one_at_top = self.PM.power(GS.top_gear(), CpuState.COMPUTE)
        cap = one_at_top + (self.N - 1) * per_rank_fmin * 0.5
        assert cap > self.fmin_power  # sanity: not PC002 territory
        diags = lint_power_cap(cap, self.N, GS)
        assert codes(diags) == ["PC003"]
        assert diags[0].severity is Severity.WARNING

    def test_pc003_skips_single_rank(self):
        diags = lint_power_cap(
            self.PM.power(GS.select(0.0).gear, CpuState.COMPUTE) * 1.1,
            1,
            GS,
        )
        assert "PC003" not in codes(diags)

    def test_pc004_cap_never_binds(self):
        diags = lint_power_cap(self.peak * 2, self.N, GS)
        assert codes(diags) == ["PC004"]
        assert diags[0].severity is Severity.INFO

    def test_feasible_band_is_clean(self):
        cap = (self.fmin_power + self.peak) / 2
        diags = lint_power_cap(cap, self.N, GS)
        assert [c for c in codes(diags) if c != "PC003"] == []


class TestServiceGate:
    def test_power_cap_accepted_and_forwarded(self):
        spec, _ = parse_balance_request(
            {"app": "CG-32", "power_cap": 100.0}, DEFAULTS
        )
        # the cap now selects the power-cap balancer in the worker, so
        # it travels in the spec (and in the cache identity)
        assert spec["power_cap"] == 100.0

    def test_capless_spec_has_no_cap_key(self):
        spec, _ = parse_balance_request({"app": "CG-32"}, DEFAULTS)
        assert "power_cap" not in spec  # capless identity unchanged

    def test_infeasible_cap_rejected(self):
        with pytest.raises(LintRejected) as exc:
            parse_balance_request(
                {"app": "CG-32", "power_cap": 0.5}, DEFAULTS
            )
        assert any(
            d["code"] == "PC001"
            for d in exc.value.detail["diagnostics"]
        )

    def test_nonbinding_cap_passes_default_threshold(self):
        # PC004 is INFO: admitted even under strict
        spec, _ = parse_balance_request(
            {"app": "CG-32", "power_cap": 1e6, "strict": True}, DEFAULTS
        )
        assert spec["app"] == "CG-32"

    def test_bad_power_cap_type(self):
        with pytest.raises(ValidationError):
            parse_balance_request(
                {"app": "CG-32", "power_cap": "lots"}, DEFAULTS
            )
        with pytest.raises(ValidationError):
            parse_balance_request(
                {"app": "CG-32", "power_cap": -3.0}, DEFAULTS
            )

    def test_candidates_gate_cap_per_cell(self):
        body = {
            "app": "CG-32",
            "power_cap": 0.5,
            "candidates": [{"gears": "uniform:6"}],
        }
        with pytest.raises(LintRejected):
            parse_balance_request(body, DEFAULTS)

    def test_duplicate_candidates_rejected_under_strict(self):
        body = {
            "app": "CG-32",
            "strict": True,
            "candidates": [
                {"gears": "uniform:6", "algorithm": "max"},
                {"gears": "uniform:6", "algorithm": "max"},
            ],
        }
        with pytest.raises(LintRejected) as exc:
            parse_balance_request(body, DEFAULTS)
        assert any(
            d["code"] == "AS006"
            for d in exc.value.detail["diagnostics"]
        )

    def test_duplicate_candidates_tolerated_without_strict(self):
        body = {
            "app": "CG-32",
            "candidates": [
                {"gears": "uniform:6", "algorithm": "max"},
                {"gears": "uniform:6", "algorithm": "max"},
            ],
        }
        spec, _ = parse_balance_request(body, DEFAULTS)
        assert len(spec["candidates"]) == 2


class TestCliTargets:
    def test_assignment_json_classified(self, tmp_path):
        from repro.diagnostics.cli import _load_target

        path = tmp_path / "assignment.json"
        path.write_text(json.dumps({
            "algorithm": "max",
            "target_time": 1.0,
            "gears": [[2.3, 1.5]],
            "overclocked": [False],
            "attained": [True],
        }))
        kind, _ = _load_target(str(path))
        assert kind == "assignment"

        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"experiments": []}))
        assert _load_target(str(manifest))[0] == "manifest"

        src = tmp_path / "mod.py"
        src.write_text("x = 1\n")
        assert _load_target(str(src))[0] == "source"
        assert _load_target(str(tmp_path))[0] == "source"

    def test_lint_cli_assignment_target(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "assignment.json"
        path.write_text(json.dumps({
            "algorithm": "max",
            "target_time": 1.0,
            "gears": [[9.9, 1.5]],
            "overclocked": [False],
            "attained": [True],
        }))
        rc = main(["lint", str(path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "AS001" in captured.out

    def test_lint_cli_target_filter_skips(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "bad.py"
        src.write_text("import math\nmath.fsum([1.0])\n")
        rc = main(["lint", "--target", "trace", str(src)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "skipping" in captured.err

    def test_lint_cli_power_cap_with_targets(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "lint", "--target", "assignment",
            "--power-cap", "0.1", "--power-cap-ranks", "4",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "PC001" in captured.out
