"""Unit tests for the application catalogue and name parsing."""

import pytest

from repro.apps.registry import (
    APP_FAMILIES,
    TABLE3,
    TABLE3_INSTANCES,
    app_names,
    build_app,
    parse_name,
    table3_targets,
)


class TestParseName:
    def test_simple(self):
        assert parse_name("CG-32") == ("CG", 32)

    def test_family_with_dash(self):
        assert parse_name("BT-MZ-128") == ("BT-MZ", 128)

    def test_case_insensitive_family(self):
        assert parse_name("cg-32") == ("CG", 32)

    def test_whitespace_tolerated(self):
        assert parse_name("  WRF-64 ") == ("WRF", 64)

    def test_missing_nproc_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_name("CG")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown application family"):
            parse_name("LINPACK-32")


class TestTargets:
    @pytest.mark.parametrize("family", sorted(TABLE3))
    def test_measured_sizes_exact(self, family):
        for nproc, (lb_pct, pe_pct) in TABLE3[family].items():
            lb, pe = table3_targets(family, nproc)
            assert lb == pytest.approx(lb_pct / 100.0)
            assert pe == pytest.approx(pe_pct / 100.0)

    def test_extrapolation_in_range(self):
        for family in TABLE3:
            for nproc in (16, 48, 96, 256):
                lb, pe = table3_targets(family, nproc)
                assert 0.0 < pe <= lb <= 1.0

    def test_imbalance_grows_with_scale_for_cg(self):
        # CG has two measured points; the fitted law must interpolate
        lb48, _ = table3_targets("CG", 48)
        lb32, _ = table3_targets("CG", 32)
        lb64, _ = table3_targets("CG", 64)
        assert lb64 < lb48 < lb32

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            table3_targets("NOPE", 32)


class TestBuildApp:
    def test_builds_every_table3_instance(self):
        for name in TABLE3_INSTANCES:
            app = build_app(name, iterations=1)
            assert app.name == name

    def test_kwargs_forwarded(self):
        app = build_app("CG-32", iterations=11, base_compute=0.05)
        assert app.iterations == 11
        assert app.base_compute == 0.05

    def test_explicit_target_overrides(self):
        app = build_app("CG-32", iterations=1, target_lb=0.5, target_pe=0.4)
        assert app.target_lb == 0.5

    def test_app_names_is_table3_order(self):
        assert app_names() == TABLE3_INSTANCES
        assert len(app_names()) == 12

    def test_every_family_has_a_class(self):
        assert set(APP_FAMILIES) == set(TABLE3)


class TestNasClasses:
    def test_class_scales_compute_volume(self):
        c = build_app("CG-16", iterations=1)
        a = build_app("CG-16", iterations=1, nas_class="A")
        assert a.base_compute == pytest.approx(c.base_compute / 4)

    def test_explicit_base_compute_wins(self):
        app = build_app("CG-16", iterations=1, nas_class="S", base_compute=0.5)
        assert app.base_compute == 0.5

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="NAS class"):
            build_app("CG-16", nas_class="Z")

    def test_normalized_results_scale_invariant(self):
        """The whole pipeline is homogeneous in the compute volume: a
        class-B run must give the same normalized energy/time as class C
        (communication is recalibrated to the same LB/PE targets)."""
        from repro.core.balancer import PowerAwareLoadBalancer
        from repro.core.gears import uniform_gear_set

        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        r_c = balancer.balance_app(build_app("SPECFEM3D-32", iterations=2))
        r_b = balancer.balance_app(
            build_app("SPECFEM3D-32", iterations=2, nas_class="B")
        )
        assert r_b.normalized_energy == pytest.approx(
            r_c.normalized_energy, abs=0.002
        )
        assert r_b.normalized_time == pytest.approx(r_c.normalized_time, abs=0.002)
        # absolute time halves with the class-B volume
        assert r_b.original_time == pytest.approx(r_c.original_time / 2, rel=0.02)
