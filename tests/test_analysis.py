"""Unit tests for trace analysis (the paper's Eq. 4 and Eq. 5)."""

import numpy as np
import pytest

from repro.traces.analysis import (
    compute_times,
    compute_times_by_phase,
    imbalance_time,
    iteration_count,
    load_balance,
    load_balance_from_times,
    parallel_efficiency,
    trace_stats,
)
from repro.traces.records import CollectiveRecord, ComputeBurst, MarkerRecord
from repro.traces.trace import Trace


def trace_with_times(times, phase=""):
    return Trace.from_streams([[ComputeBurst(t, phase=phase)] for t in times])


class TestLoadBalance:
    def test_equal_times_give_unity(self):
        assert load_balance_from_times(np.array([2.0, 2.0, 2.0])) == 1.0

    def test_formula_matches_eq4(self):
        # LB = sum / (N * max) = (4+2+2) / (3*4)
        times = np.array([4.0, 2.0, 2.0])
        assert load_balance_from_times(times) == pytest.approx(8.0 / 12.0)

    def test_single_rank_is_balanced(self):
        assert load_balance_from_times(np.array([5.0])) == 1.0

    def test_all_zero_is_balanced_by_convention(self):
        assert load_balance_from_times(np.array([0.0, 0.0])) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_balance_from_times(np.array([]))

    def test_trace_level_wrapper(self):
        t = trace_with_times([4.0, 2.0, 2.0])
        assert load_balance(t) == pytest.approx(2.0 / 3.0)


class TestParallelEfficiency:
    def test_formula_matches_eq5(self):
        t = trace_with_times([4.0, 2.0])
        # PE = (4+2) / (2 * 5)
        assert parallel_efficiency(t, total_execution_time=5.0) == pytest.approx(0.6)

    def test_pe_never_exceeds_lb(self, small_trace):
        # T_exec >= max compute time, so PE <= LB always
        times = compute_times(small_trace)
        pe = parallel_efficiency(small_trace, float(times.max()) * 1.01)
        assert pe <= load_balance(small_trace) + 1e-12

    def test_nonpositive_time_rejected(self):
        t = trace_with_times([1.0])
        with pytest.raises(ValueError):
            parallel_efficiency(t, 0.0)


class TestHelpers:
    def test_compute_times_vector(self):
        t = trace_with_times([1.0, 2.0, 3.0])
        assert compute_times(t).tolist() == [1.0, 2.0, 3.0]

    def test_compute_times_by_phase(self):
        t = Trace.from_streams(
            [
                [ComputeBurst(1.0, phase="a"), ComputeBurst(2.0, phase="b")],
                [ComputeBurst(3.0, phase="a")],
            ]
        )
        phases = compute_times_by_phase(t)
        assert phases["a"].tolist() == [1.0, 3.0]
        assert phases["b"].tolist() == [2.0, 0.0]

    def test_imbalance_time(self):
        t = trace_with_times([4.0, 2.0, 1.0])
        assert imbalance_time(t) == pytest.approx((4 - 4) + (4 - 2) + (4 - 1))

    def test_iteration_count_from_markers(self):
        t = Trace.from_streams(
            [[MarkerRecord("iter", 0), ComputeBurst(1.0), MarkerRecord("iter", 1)]]
        )
        assert iteration_count(t) == 2

    def test_iteration_count_ignores_unnumbered_markers(self):
        t = Trace.from_streams([[MarkerRecord("note"), ComputeBurst(1.0)]])
        assert iteration_count(t) == 0


class TestTraceStats:
    def test_stats_fields(self):
        t = Trace.from_streams(
            [
                [MarkerRecord("iter", 0), ComputeBurst(4.0),
                 CollectiveRecord("allreduce", 8)],
                [MarkerRecord("iter", 0), ComputeBurst(2.0),
                 CollectiveRecord("allreduce", 8)],
            ],
            meta={"name": "t"},
        )
        stats = trace_stats(t, total_execution_time=5.0)
        assert stats.nproc == 2
        assert stats.load_balance == pytest.approx(0.75)
        assert stats.parallel_efficiency == pytest.approx(0.6)
        assert stats.max_compute == 4.0
        assert stats.iterations == 1
        assert stats.collective_counts == {"allreduce": 2}

    def test_pe_none_without_time(self):
        t = trace_with_times([1.0])
        stats = trace_stats(t)
        assert stats.parallel_efficiency is None
        assert stats.row()["parallel_efficiency_pct"] is None


class TestCommunicationMatrix:
    def test_bytes_and_counts(self):
        from repro.traces.analysis import communication_matrix
        from repro.traces.records import IsendRecord, SendRecord, WaitRecord

        t = Trace.from_streams(
            [
                [SendRecord(1, 100), IsendRecord(2, 50, request=0), WaitRecord(0)],
                [SendRecord(2, 25)],
                [],
            ]
        )
        nbytes, counts = communication_matrix(t)
        assert nbytes[0, 1] == 100
        assert nbytes[0, 2] == 50
        assert nbytes[1, 2] == 25
        assert counts[0, 2] == 1
        assert counts.sum() == 3
        assert nbytes[2].sum() == 0

    def test_top_communicators_sorted(self):
        from repro.traces.analysis import top_communicators
        from repro.traces.records import SendRecord

        t = Trace.from_streams(
            [[SendRecord(1, 10), SendRecord(2, 300)], [SendRecord(2, 200)], []]
        )
        top = top_communicators(t, k=2)
        assert top == [(0, 2, 300.0), (1, 2, 200.0)]

    def test_top_communicators_k_validated(self):
        from repro.traces.analysis import top_communicators

        with pytest.raises(ValueError):
            top_communicators(trace_with_times([1.0]), k=0)

    def test_app_matrix_symmetry_for_halo(self, small_trace):
        from repro.traces.analysis import communication_matrix

        nbytes, _ = communication_matrix(small_trace)
        # CG's periodic 1-D halo: symmetric pairwise traffic
        assert (nbytes == nbytes.T).all()
