"""Unit tests for the configurable synthetic application builder."""

import pytest

from repro.apps.synthetic import PATTERNS, SHAPES, build_synthetic
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import uniform_gear_set
from repro.netsim.simulator import MpiSimulator
from repro.traces.analysis import load_balance, parallel_efficiency
from repro.traces.trace import Trace


def trace_of(app):
    result = MpiSimulator(platform=app.platform).run(
        app.programs(), record_trace=True, meta={"name": app.name}
    )
    return result.trace, result


class TestCalibration:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_lb_calibrated_for_every_shape(self, shape):
        app = build_synthetic(
            nproc=24, target_lb=0.7, target_pe=0.6, shape=shape, iterations=2
        )
        trace, _ = trace_of(app)
        assert load_balance(trace) == pytest.approx(0.7, abs=0.01)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_pe_roughly_calibrated_for_every_pattern(self, pattern):
        app = build_synthetic(
            nproc=16, target_lb=0.8, target_pe=0.55, pattern=pattern,
            iterations=2,
        )
        trace, result = trace_of(app)
        pe = parallel_efficiency(trace, result.execution_time)
        assert pe == pytest.approx(0.55, rel=0.15)

    def test_traces_validate(self):
        for pattern in PATTERNS:
            app = build_synthetic(
                nproc=12, target_lb=0.75, target_pe=0.6, pattern=pattern,
                iterations=2,
            )
            Trace.from_streams([list(p) for p in app.programs()]).validate()


class TestPhases:
    def test_multi_phase_emits_labels(self):
        app = build_synthetic(
            nproc=16, target_lb=0.7, target_pe=0.6, phases=2, iterations=2
        )
        trace, _ = trace_of(app)
        from repro.traces.analysis import compute_times_by_phase

        phases = compute_times_by_phase(trace)
        assert set(phases) == {"phase0", "phase1"}

    def test_multi_phase_stretches_time_under_max(self):
        """Rotated phases reproduce the PEPC pathology on demand."""
        app = build_synthetic(
            nproc=32, target_lb=0.6, target_pe=0.55, phases=2,
            shape="ramp", iterations=2,
        )
        report = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_app(app)
        assert report.normalized_time > 1.01


class TestValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            build_synthetic(8, 0.8, 0.7, shape="spiky")

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            build_synthetic(8, 0.8, 0.7, pattern="gossip")

    def test_bad_phases_rejected(self):
        with pytest.raises(ValueError):
            build_synthetic(8, 0.8, 0.7, phases=0)

    def test_name_override(self):
        app = build_synthetic(8, 0.8, 0.7, name="my-app")
        assert app.name == "my-app"

    def test_default_name_descriptive(self):
        app = build_synthetic(8, 0.8, 0.7, shape="decay", pattern="alltoall")
        assert app.name == "SYNTH[decay/alltoall]-8"


class TestEndToEnd:
    def test_balances_like_named_apps(self):
        app = build_synthetic(
            nproc=32, target_lb=0.5, target_pe=0.45, shape="decay",
            iterations=2,
        )
        report = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_app(app)
        assert report.normalized_energy < 0.75
