"""Edge-case and failure-injection tests across modules.

Consolidates the awkward corners: boundary world sizes, zero-work
ranks, protocol boundaries, unicode metadata, and the failure modes a
user will hit first when feeding the library unusual input.
"""

import pytest

from repro.apps import build_app, vmpi
from repro.core.algorithms import MaxAlgorithm
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.gears import (
    exponential_gear_set,
    limited_continuous_set,
    overclocked,
    uniform_gear_set,
)
from repro.core.timemodel import BetaTimeModel
from repro.netsim.platform import PlatformConfig
from repro.netsim.simulator import MpiSimulator
from repro.simx.errors import DeadlockError
from repro.traces.jsonio import dumps_trace, loads_trace
from repro.traces.records import ComputeBurst
from repro.traces.trace import Trace

EASY = PlatformConfig(
    latency=0.0, bandwidth=1e9, send_overhead=0.0, recv_overhead=0.0,
    cpus_per_node=1, intra_node_speedup=1.0,
)


class TestBoundaryWorlds:
    def test_single_rank_app_runs(self):
        app = build_app("CG-1", iterations=2)
        result = MpiSimulator().run(app.programs())
        assert result.execution_time > 0.0
        assert result.nproc == 1

    def test_single_rank_balances_trivially(self):
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        report = balancer.balance_app(build_app("MG-1", iterations=2))
        assert report.normalized_energy == pytest.approx(1.0)

    def test_two_rank_world(self):
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        report = balancer.balance_app(build_app("BT-MZ-2", iterations=2))
        assert 0.0 < report.normalized_energy <= 1.0

    def test_two_gear_set_endpoints(self):
        gs = uniform_gear_set(2)
        assert gs.frequencies == pytest.approx((0.8, 2.3))
        gs = exponential_gear_set(2)
        assert gs.frequencies == pytest.approx((0.8, 2.3))


class TestZeroWork:
    def test_rank_with_zero_compute_in_balancing(self):
        """A completely idle rank gets the slowest gear, nothing breaks."""
        sim = MpiSimulator(platform=EASY)
        trace = sim.run(
            [
                [vmpi.compute(0.0), vmpi.barrier()],
                [vmpi.compute(1.0), vmpi.barrier()],
            ],
            record_trace=True,
        ).trace
        balancer = PowerAwareLoadBalancer(
            gear_set=uniform_gear_set(6), platform=EASY
        )
        report = balancer.balance_trace(trace)
        assert report.assignment.gears[0].frequency == pytest.approx(0.8)
        assert report.normalized_energy < 1.0

    def test_all_marker_trace_round_trips(self):
        t = Trace.from_streams([[vmpi.marker("only", 0)]])
        t2 = loads_trace(dumps_trace(t))
        assert t2.total_records() == 1


class TestProtocolBoundary:
    def test_message_exactly_at_threshold_is_eager(self):
        platform = PlatformConfig(
            latency=0.0, bandwidth=1e9, eager_threshold=1000,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        # eager: sender does not block even though nobody ever computes
        result = MpiSimulator(platform=platform).run(
            [
                [vmpi.send(1, 1000), vmpi.compute(0.5)],
                [vmpi.compute(1.0), vmpi.recv(0)],
            ]
        )
        assert result.end_times[0] == pytest.approx(0.5)

    def test_message_one_byte_over_threshold_rendezvous(self):
        platform = PlatformConfig(
            latency=0.0, bandwidth=1e9, eager_threshold=1000,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = MpiSimulator(platform=platform).run(
            [
                [vmpi.send(1, 1001), vmpi.compute(0.5)],
                [vmpi.compute(1.0), vmpi.recv(0)],
            ]
        )
        # sender blocked until the recv posts at t=1
        assert result.end_times[0] > 1.0

    def test_zero_byte_rendezvous_impossible(self):
        # zero-byte messages are always eager (threshold >= 0)
        platform = PlatformConfig(
            latency=0.0, bandwidth=1e9, eager_threshold=0,
            send_overhead=0.0, recv_overhead=0.0,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = MpiSimulator(platform=platform).run(
            [[vmpi.send(1, 0), vmpi.compute(0.1)], [vmpi.recv(0)]]
        )
        assert result.end_times[0] == pytest.approx(0.1)


class TestOverheadAccounting:
    def test_send_recv_overheads_add_time(self):
        costly = PlatformConfig(
            latency=0.0, bandwidth=1e9, send_overhead=0.01, recv_overhead=0.02,
            cpus_per_node=1, intra_node_speedup=1.0,
        )
        result = MpiSimulator(platform=costly).run(
            [[vmpi.send(1, 10)], [vmpi.recv(0)]]
        )
        assert result.end_times[0] == pytest.approx(0.01)
        assert result.end_times[1] >= 0.02

    def test_intra_node_messages_faster(self):
        platform = PlatformConfig(
            latency=1e-3, bandwidth=1e9, cpus_per_node=2,
            intra_node_speedup=4.0, send_overhead=0.0, recv_overhead=0.0,
        )
        sim = MpiSimulator(platform=platform)
        same = sim.run([[vmpi.send(1, 0)], [vmpi.recv(0)], [vmpi.compute(0.0)]])
        cross = sim.run([[vmpi.send(2, 0)], [vmpi.compute(0.0)], [vmpi.recv(0)]])
        assert same.end_times[1] < cross.end_times[2]


class TestGuards:
    def test_max_events_stops_runaway(self):
        def forever():
            while True:
                yield vmpi.compute(1e-6)

        with pytest.raises(RuntimeError, match="max_events"):
            MpiSimulator(platform=EASY).run([list_like(forever())], max_events=50)

    def test_collective_arity_mismatch_deadlocks(self):
        with pytest.raises(DeadlockError):
            MpiSimulator(platform=EASY).run(
                [
                    [vmpi.barrier(), vmpi.barrier()],
                    [vmpi.barrier()],
                ]
            )

    def test_overclocked_twice_compounds(self):
        once = overclocked(limited_continuous_set(), 10.0)
        twice = overclocked(once, 10.0)
        assert twice.fmax == pytest.approx(2.3 * 1.21)


def list_like(gen):
    """A lazily-consumed program (exercises the iterator path)."""
    return gen


class TestUnicodeAndMeta:
    def test_unicode_trace_name_round_trips(self):
        t = Trace(2, meta={"name": "seismic-wave-模拟", "β": 0.5})
        t[0].append(ComputeBurst(1.0))
        t2 = loads_trace(dumps_trace(t))
        assert t2.meta["name"] == "seismic-wave-模拟"
        assert t2.meta["β"] == 0.5

    def test_balance_report_meta_carries_trace_meta(self):
        balancer = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6))
        trace = balancer.trace_app(build_app("CG-8", iterations=2))
        trace.meta["study"] = "edge-test"
        report = balancer.balance_trace(trace)
        assert report.meta["trace_meta"]["study"] == "edge-test"


class TestAlgorithmEdges:
    def test_model_fmax_mismatch_with_gear_set_is_explicit(self):
        """A model fmax above the set ceiling: the heaviest rank's gear
        clamps and is flagged unattained."""
        model = BetaTimeModel(fmax=3.0, beta=0.5)
        a = MaxAlgorithm().assign([1.0, 2.0], uniform_gear_set(6), model)
        assert a.gears[1].frequency == pytest.approx(2.3)
        assert a.attained[1] is False

    def test_near_identical_times_fp_stability(self):
        times = [1.0, 1.0 + 1e-12, 1.0 - 1e-12]
        model = BetaTimeModel(fmax=2.3, beta=0.5)
        a = MaxAlgorithm().assign(times, uniform_gear_set(6), model)
        assert all(g.frequency == pytest.approx(2.3) for g in a.gears)
