"""Unit tests for the dynamic runtimes (Jitter, comm-phase scaling)."""

import pytest

from repro.apps import build_app
from repro.core.balancer import PowerAwareLoadBalancer
from repro.core.dynamic import CommPhaseScalingRuntime, JitterRuntime
from repro.core.gears import Gear, uniform_gear_set
from repro.netsim.simulator import MpiSimulator


def make_trace(name="SPECFEM3D-32", iterations=4, drift_step=0):
    app = build_app(name, iterations=iterations, drift_step=drift_step)
    sim = MpiSimulator()
    return sim.run(
        app.programs(), record_trace=True, meta={"name": app.name}
    ).trace


class TestJitter:
    def test_stationary_close_to_static_max(self):
        trace = make_trace(iterations=5)
        jitter = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        static = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace
        )
        # Jitter pays one warm-up iteration at the top gear, then matches
        assert jitter.normalized_energy == pytest.approx(
            static.normalized_energy, abs=0.05
        )
        assert jitter.normalized_energy >= static.normalized_energy - 0.005

    def test_warmup_iteration_at_top_gear(self):
        trace = make_trace(iterations=3)
        report = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        first = report.assignments[0]
        assert first.algorithm == "warmup"
        assert set(g.frequency for g in first.gears) == {2.3}

    def test_later_iterations_use_algorithm(self):
        trace = make_trace(iterations=3)
        report = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        assert report.assignments[1].algorithm == "MAX"
        assert min(g.frequency for g in report.assignments[1].gears) < 2.3

    def test_drifting_load_static_saves_nothing_jitter_does(self):
        """Rotated load flattens per-rank totals: static MAX is blind,
        the iteration-level loop is not."""
        trace = make_trace(iterations=6, drift_step=8)
        static = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace
        )
        jitter = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        assert static.normalized_energy > 0.99  # totals look balanced
        assert jitter.normalized_energy < static.normalized_energy - 0.01

    def test_requires_iteration_markers(self):
        from repro.traces.records import ComputeBurst
        from repro.traces.trace import Trace

        bare = Trace.from_streams([[ComputeBurst(1.0)], [ComputeBurst(2.0)]])
        with pytest.raises(ValueError, match="iteration"):
            JitterRuntime(gear_set=uniform_gear_set(6)).run(bare)

    def test_report_arithmetic(self):
        trace = make_trace(iterations=3)
        report = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        assert report.normalized_edp == pytest.approx(
            report.normalized_energy * report.normalized_time
        )
        assert report.iterations == 3
        assert "SPECFEM3D-32" in str(report)


class TestJitterPredictors:
    def test_ewma_matches_last_on_stationary_load(self):
        trace = make_trace(iterations=4)
        last = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        ewma = JitterRuntime(
            gear_set=uniform_gear_set(6), predictor="ewma", ewma_alpha=0.5
        ).run(trace)
        # stationary: every predictor sees the same times
        assert ewma.normalized_energy == pytest.approx(
            last.normalized_energy, abs=1e-9
        )

    def test_ewma_name_reflects_alpha(self):
        runtime = JitterRuntime(
            gear_set=uniform_gear_set(6), predictor="ewma", ewma_alpha=0.3
        )
        assert runtime.name == "Jitter[ewma=0.3]"

    def test_ewma_smooths_noisy_loads(self):
        """Alternating heavy/light ranks: lag-1 prediction is always
        exactly wrong; the EWMA converges to the mean and does better
        on execution time."""
        from repro.apps import vmpi

        nproc, niter = 4, 8

        def program(rank):
            for it in range(niter):
                yield vmpi.marker("iter", iteration=it)
                heavy = (it + rank) % 2 == 0
                yield vmpi.compute(0.02 if heavy else 0.01)
                yield vmpi.barrier()

        trace = MpiSimulator().run(
            [program(r) for r in range(nproc)],
            record_trace=True,
            meta={"name": "flip-flop"},
        ).trace
        last = JitterRuntime(gear_set=uniform_gear_set(6)).run(trace)
        ewma = JitterRuntime(
            gear_set=uniform_gear_set(6), predictor="ewma", ewma_alpha=0.3
        ).run(trace)
        assert ewma.normalized_time < last.normalized_time - 0.01

    def test_bad_predictor_args_rejected(self):
        with pytest.raises(ValueError):
            JitterRuntime(gear_set=uniform_gear_set(6), predictor="oracle")
        with pytest.raises(ValueError):
            JitterRuntime(
                gear_set=uniform_gear_set(6), predictor="ewma", ewma_alpha=0.0
            )


class TestCommPhaseScaling:
    def test_energy_saved_without_time_penalty(self):
        trace = make_trace("CG-64", iterations=3)
        report = CommPhaseScalingRuntime(gear_set=uniform_gear_set(6)).run(trace)
        assert report.normalized_energy < 0.95
        assert report.normalized_time == pytest.approx(1.0)

    def test_savings_track_communication_fraction(self):
        """IS (PE 8%) must save far more than SPECFEM3D (PE 93%)."""
        runtime = CommPhaseScalingRuntime(gear_set=uniform_gear_set(6))
        r_is = runtime.run(make_trace("IS-32", iterations=3))
        r_sf = runtime.run(make_trace("SPECFEM3D-32", iterations=3))
        assert r_is.normalized_energy < r_sf.normalized_energy - 0.2

    def test_switch_overhead_costs_time(self):
        trace = make_trace("CG-64", iterations=3)
        free = CommPhaseScalingRuntime(gear_set=uniform_gear_set(6)).run(trace)
        taxed = CommPhaseScalingRuntime(
            gear_set=uniform_gear_set(6), switch_overhead=50e-6
        ).run(trace)
        assert taxed.normalized_time > free.normalized_time
        assert taxed.normalized_energy >= free.normalized_energy

    def test_explicit_low_gear(self):
        trace = make_trace("CG-64", iterations=2)
        lower = CommPhaseScalingRuntime(low_gear=Gear(0.8, 1.0)).run(trace)
        higher = CommPhaseScalingRuntime(low_gear=Gear(1.7, 1.3)).run(trace)
        assert lower.normalized_energy < higher.normalized_energy

    def test_needs_gear_or_set(self):
        with pytest.raises(ValueError, match="low_gear or gear_set"):
            CommPhaseScalingRuntime()

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            CommPhaseScalingRuntime(
                gear_set=uniform_gear_set(6), switch_overhead=-1.0
            )

    def test_complements_static_balancing(self):
        """comm-scaling shines exactly where MAX is useless (CG)."""
        trace = make_trace("CG-32", iterations=3)
        static = PowerAwareLoadBalancer(gear_set=uniform_gear_set(6)).balance_trace(
            trace
        )
        comm = CommPhaseScalingRuntime(gear_set=uniform_gear_set(6)).run(trace)
        assert static.normalized_energy > 0.99
        assert comm.normalized_energy < 0.9
